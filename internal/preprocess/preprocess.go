// Package preprocess converts raw edge-list inputs into the on-disk CSR
// format GPSA streams (paper §V-B). Edge-list inputs are not grouped by
// source vertex, so conversion performs an external sort: the input is
// read once into bounded sorted runs on disk, which are then k-way merged
// directly into the CSR writer. Memory use is O(run size + |V|) — the
// per-vertex degree table — regardless of edge count, so inputs larger
// than RAM convert fine (the same discipline GraphChi's sharder uses).
package preprocess

import (
	"bufio"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/diskio"
	"repro/internal/graph"
)

// Options tunes conversion.
type Options struct {
	// ChunkEdges bounds the in-memory sorted-run size (default 1<<22,
	// 48 MiB of records).
	ChunkEdges int
	// Weighted retains the third edge-list column as float32 weights.
	Weighted bool
	// Compact writes the varint-delta compact CSR format (version 2)
	// instead of the plain word format.
	Compact bool
	// TempDir holds the sorted runs (default: alongside the output).
	TempDir string
	// NumVertices forces the vertex-id space; 0 infers max(id)+1.
	NumVertices int64
}

// Stats reports what a conversion did.
type Stats struct {
	NumVertices int64
	NumEdges    int64
	Runs        int // sorted runs merged
}

const runRecBytes = 12 // src, dst uint32 + weight float32

// EdgeListToCSR converts the text edge list at inputPath into a CSR file
// at outputPath (plus sidecar index).
func EdgeListToCSR(inputPath, outputPath string, opt Options) (*Stats, error) {
	in, err := os.Open(inputPath)
	if err != nil {
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	defer in.Close() //lint:syncerr read-only handle; no durability contract on close
	return ConvertEdgeStream(newTextEdgeReader(in), outputPath, opt)
}

// EdgesToCSR converts an in-memory edge list (convenience path for tests
// and small graphs).
func EdgesToCSR(edges []graph.Edge, outputPath string, opt Options) (*Stats, error) {
	return ConvertEdgeStream(&sliceEdgeReader{edges: edges}, outputPath, opt)
}

// EdgeReader yields edges one at a time; io.EOF terminates the stream.
type EdgeReader interface {
	ReadEdge() (graph.Edge, error)
}

type sliceEdgeReader struct {
	edges []graph.Edge
	i     int
}

func (r *sliceEdgeReader) ReadEdge() (graph.Edge, error) {
	if r.i >= len(r.edges) {
		return graph.Edge{}, io.EOF
	}
	e := r.edges[r.i]
	r.i++
	return e, nil
}

// textEdgeReader parses the SNAP text format incrementally.
type textEdgeReader struct {
	sc   *bufio.Scanner
	line int
}

func newTextEdgeReader(r io.Reader) *textEdgeReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &textEdgeReader{sc: sc}
}

func (t *textEdgeReader) ReadEdge() (graph.Edge, error) {
	for t.sc.Scan() {
		t.line++
		b := t.sc.Bytes()
		// Trim and skip comments/blank lines without allocating.
		i := 0
		for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r') {
			i++
		}
		if i == len(b) || b[i] == '#' || b[i] == '%' {
			continue
		}
		e, err := parseEdgeLine(b[i:])
		if err != nil {
			return graph.Edge{}, fmt.Errorf("preprocess: line %d: %w", t.line, err)
		}
		return e, nil
	}
	if err := t.sc.Err(); err != nil {
		return graph.Edge{}, err
	}
	return graph.Edge{}, io.EOF
}

func parseEdgeLine(b []byte) (graph.Edge, error) {
	src, rest, err := parseUint(b)
	if err != nil {
		return graph.Edge{}, fmt.Errorf("bad source: %v", err)
	}
	dst, rest, err := parseUint(rest)
	if err != nil {
		return graph.Edge{}, fmt.Errorf("bad destination: %v", err)
	}
	e := graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)}
	// Optional weight column.
	for len(rest) > 0 && (rest[0] == ' ' || rest[0] == '\t') {
		rest = rest[1:]
	}
	if len(rest) > 0 && rest[0] != '\r' {
		var w float64
		if _, err := fmt.Sscanf(string(rest), "%g", &w); err != nil {
			return graph.Edge{}, fmt.Errorf("bad weight %q: %v", rest, err)
		}
		e.Weight = float32(w)
	}
	return e, nil
}

func parseUint(b []byte) (uint64, []byte, error) {
	i := 0
	for i < len(b) && (b[i] == ' ' || b[i] == '\t') {
		i++
	}
	start := i
	var x uint64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		x = x*10 + uint64(b[i]-'0')
		if x > uint64(graph.MaxVertices) {
			return 0, nil, fmt.Errorf("id overflows 32 bits")
		}
		i++
	}
	if i == start {
		return 0, nil, fmt.Errorf("expected integer in %q", b)
	}
	return x, b[i:], nil
}

// ConvertEdgeStream drives the full external-sort conversion.
func ConvertEdgeStream(r EdgeReader, outputPath string, opt Options) (*Stats, error) {
	if opt.ChunkEdges <= 0 {
		opt.ChunkEdges = 1 << 22
	}
	if opt.TempDir == "" {
		opt.TempDir = filepath.Dir(outputPath)
	}

	// Pass 1: sorted runs + degree counting + vertex-count inference.
	runs, degrees, numVertices, numEdges, err := buildRuns(r, opt)
	defer removeRuns(runs)
	if err != nil {
		return nil, err
	}
	if opt.NumVertices > 0 {
		if opt.NumVertices < numVertices {
			return nil, fmt.Errorf("preprocess: input has vertex ids up to %d but NumVertices is %d", numVertices-1, opt.NumVertices)
		}
		numVertices = opt.NumVertices
	}
	if numVertices == 0 {
		numVertices = 1 // an empty input still yields a valid 1-vertex file
	}

	// Pass 2: k-way merge into the CSR writer.
	var w recordWriter
	if opt.Compact {
		w, err = graph.NewCompactWriter(outputPath, numVertices, numEdges, opt.Weighted)
	} else {
		w, err = graph.NewWriter(outputPath, numVertices, numEdges, opt.Weighted)
	}
	if err != nil {
		return nil, err
	}
	if err := mergeRuns(runs, w, numVertices, degrees, opt.Weighted); err != nil {
		return nil, err
	}
	return &Stats{NumVertices: numVertices, NumEdges: numEdges, Runs: len(runs)}, nil
}

// recordWriter is the per-vertex sink shared by both CSR formats.
type recordWriter interface {
	AppendVertex(dsts []graph.VertexID, weights []float32) error
	Finish() error
}

type runFile struct{ path string }

func removeRuns(runs []runFile) {
	for _, r := range runs {
		os.Remove(r.path)
	}
}

func buildRuns(r EdgeReader, opt Options) (runs []runFile, degrees []uint32, numVertices, numEdges int64, err error) {
	buf := make([]graph.Edge, 0, opt.ChunkEdges)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		sort.Slice(buf, func(i, j int) bool { return buf[i].Src < buf[j].Src })
		f, err := diskio.CreateTemp(opt.TempDir, "gpsa-run-*.bin")
		if err != nil {
			return err
		}
		bw := bufio.NewWriterSize(f, 1<<20)
		var rec [runRecBytes]byte
		for _, e := range buf {
			binary.LittleEndian.PutUint32(rec[0:], e.Src)
			binary.LittleEndian.PutUint32(rec[4:], e.Dst)
			binary.LittleEndian.PutUint32(rec[8:], math.Float32bits(e.Weight))
			if _, err := bw.Write(rec[:]); err != nil {
				f.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			f.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		runs = append(runs, runFile{path: f.Name()})
		buf = buf[:0]
		return nil
	}

	grow := func(v graph.VertexID) {
		if int64(v) >= numVertices {
			numVertices = int64(v) + 1
		}
		for int64(len(degrees)) < numVertices {
			degrees = append(degrees, 0)
		}
	}

	for {
		e, rerr := r.ReadEdge()
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return runs, nil, 0, 0, rerr
		}
		grow(e.Src)
		grow(e.Dst)
		degrees[e.Src]++
		numEdges++
		buf = append(buf, e)
		if len(buf) >= opt.ChunkEdges {
			if err := flush(); err != nil {
				return runs, nil, 0, 0, err
			}
		}
	}
	if err := flush(); err != nil {
		return runs, nil, 0, 0, err
	}
	return runs, degrees, numVertices, numEdges, nil
}

// runCursor streams one sorted run during the merge.
type runCursor struct {
	br   *bufio.Reader
	f    *os.File
	cur  graph.Edge
	done bool
}

func (c *runCursor) advance() error {
	var rec [runRecBytes]byte
	if _, err := io.ReadFull(c.br, rec[:]); err != nil {
		if err == io.EOF {
			c.done = true
			return nil
		}
		return err
	}
	c.cur = graph.Edge{
		Src:    binary.LittleEndian.Uint32(rec[0:]),
		Dst:    binary.LittleEndian.Uint32(rec[4:]),
		Weight: math.Float32frombits(binary.LittleEndian.Uint32(rec[8:])),
	}
	return nil
}

type cursorHeap []*runCursor

func (h cursorHeap) Len() int           { return len(h) }
func (h cursorHeap) Less(i, j int) bool { return h[i].cur.Src < h[j].cur.Src }
func (h cursorHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)        { *h = append(*h, x.(*runCursor)) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

func mergeRuns(runs []runFile, w recordWriter, numVertices int64, degrees []uint32, weighted bool) error {
	h := &cursorHeap{}
	for _, rf := range runs {
		f, err := os.Open(rf.path)
		if err != nil {
			return err
		}
		c := &runCursor{f: f, br: bufio.NewReaderSize(f, 1<<20)}
		if err := c.advance(); err != nil {
			f.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
			return err
		}
		if c.done {
			f.Close() //lint:syncerr read-only handle; no durability contract on close
			continue
		}
		*h = append(*h, c)
	}
	defer func() {
		for _, c := range *h {
			c.f.Close() //lint:syncerr read-only handle; no durability contract on close
		}
	}()
	heap.Init(h)

	var dsts []graph.VertexID
	var weights []float32
	next := int64(0) // next vertex to append

	emitUpTo := func(v int64) error {
		// Append empty records for vertices with no out-edges.
		for ; next < v; next++ {
			var wts []float32
			if weighted {
				wts = []float32{}
			}
			if next < int64(len(degrees)) && degrees[next] != 0 {
				return fmt.Errorf("preprocess: internal: vertex %d expected %d edges, merge produced none", next, degrees[next])
			}
			if err := w.AppendVertex(nil, wts); err != nil {
				return err
			}
		}
		return nil
	}

	flushVertex := func(v int64) error {
		if err := emitUpTo(v); err != nil {
			return err
		}
		var wts []float32
		if weighted {
			wts = weights
		}
		if err := w.AppendVertex(dsts, wts); err != nil {
			return err
		}
		next = v + 1
		dsts = dsts[:0]
		weights = weights[:0]
		return nil
	}

	curV := int64(-1)
	for h.Len() > 0 {
		c := (*h)[0]
		e := c.cur
		if int64(e.Src) != curV {
			if curV >= 0 {
				if err := flushVertex(curV); err != nil {
					return err
				}
			}
			curV = int64(e.Src)
		}
		dsts = append(dsts, e.Dst)
		if weighted {
			weights = append(weights, e.Weight)
		}
		if err := c.advance(); err != nil {
			return err
		}
		if c.done {
			c.f.Close() //lint:syncerr read-only handle; no durability contract on close
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	if curV >= 0 {
		if err := flushVertex(curV); err != nil {
			return err
		}
	}
	if err := emitUpTo(numVertices); err != nil {
		return err
	}
	return w.Finish()
}
