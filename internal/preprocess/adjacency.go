package preprocess

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
)

// AdjacencyToCSR converts the adjacency text format ("src n dst1 ...
// dstn" per line; paper §V-A accepts both edge lists and adjacency
// input). Adjacency input is already grouped by source, but lines may
// appear out of order, so the same external sort pipeline is reused.
func AdjacencyToCSR(inputPath, outputPath string, opt Options) (*Stats, error) {
	in, err := os.Open(inputPath)
	if err != nil {
		return nil, fmt.Errorf("preprocess: %w", err)
	}
	defer in.Close() //lint:syncerr read-only handle; no durability contract on close
	return ConvertEdgeStream(newAdjacencyReader(in), outputPath, opt)
}

// adjacencyReader yields the edges of an adjacency file one at a time.
type adjacencyReader struct {
	sc      *bufio.Scanner
	line    int
	src     graph.VertexID
	pending []graph.VertexID
}

func newAdjacencyReader(r io.Reader) *adjacencyReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	return &adjacencyReader{sc: sc}
}

func (a *adjacencyReader) ReadEdge() (graph.Edge, error) {
	for len(a.pending) == 0 {
		if !a.sc.Scan() {
			if err := a.sc.Err(); err != nil {
				return graph.Edge{}, err
			}
			return graph.Edge{}, io.EOF
		}
		a.line++
		if err := a.parseLine(a.sc.Bytes()); err != nil {
			return graph.Edge{}, fmt.Errorf("preprocess: adjacency line %d: %w", a.line, err)
		}
	}
	e := graph.Edge{Src: a.src, Dst: a.pending[0]}
	a.pending = a.pending[1:]
	return e, nil
}

func (a *adjacencyReader) parseLine(b []byte) error {
	i := 0
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\r') {
		i++
	}
	if i == len(b) || b[i] == '#' || b[i] == '%' {
		return nil
	}
	src, rest, err := parseUint(b[i:])
	if err != nil {
		return fmt.Errorf("bad source: %v", err)
	}
	n, rest, err := parseUint(rest)
	if err != nil {
		return fmt.Errorf("bad degree: %v", err)
	}
	dsts := make([]graph.VertexID, 0, n)
	for k := uint64(0); k < n; k++ {
		var d uint64
		d, rest, err = parseUint(rest)
		if err != nil {
			return fmt.Errorf("destination %d of %d: %v", k+1, n, err)
		}
		dsts = append(dsts, graph.VertexID(d))
	}
	// Trailing garbage (beyond whitespace) is an error.
	for _, c := range rest {
		if c != ' ' && c != '\t' && c != '\r' {
			return fmt.Errorf("trailing data %q after %d destinations", rest, n)
		}
	}
	a.src = graph.VertexID(src)
	a.pending = dsts
	return nil
}
