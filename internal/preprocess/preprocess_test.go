package preprocess

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mmap"
)

// readBack loads a converted CSR file into adjacency form.
func readBack(t *testing.T, path string, weighted bool) (map[int64][]graph.VertexID, map[int64][]float32, int64, int64) {
	t.Helper()
	f, err := graph.OpenFile(path, mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	adj := make(map[int64][]graph.VertexID)
	wts := make(map[int64][]float32)
	c := f.Cursor(f.WholeInterval())
	for {
		v, deg, raw, ok := c.Next()
		if !ok {
			break
		}
		for i := 0; i < int(deg); i++ {
			d, w := graph.DecodeEdge(raw, i, weighted)
			adj[v] = append(adj[v], d)
			wts[v] = append(wts[v], w)
		}
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return adj, wts, f.NumVertices, f.NumEdges
}

func TestEdgesToCSRSmall(t *testing.T) {
	edges := []graph.Edge{
		{Src: 3, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 3, Dst: 0},
	}
	out := filepath.Join(t.TempDir(), "g.gpsa")
	st, err := EdgesToCSR(edges, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices != 4 || st.NumEdges != 4 {
		t.Fatalf("stats = %+v", st)
	}
	adj, _, nv, ne := readBack(t, out, false)
	if nv != 4 || ne != 4 {
		t.Fatalf("file dims (%d, %d)", nv, ne)
	}
	if !reflect.DeepEqual(adj[0], []graph.VertexID{2, 3}) {
		t.Fatalf("adj[0] = %v", adj[0])
	}
	if !reflect.DeepEqual(adj[3], []graph.VertexID{1, 0}) {
		t.Fatalf("adj[3] = %v", adj[3])
	}
}

func TestEdgeListTextConversion(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "edges.txt")
	content := "# a comment\n0\t2\n0 3\n\n% other comment\n2 1\n"
	if err := os.WriteFile(in, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "g.gpsa")
	st, err := EdgeListToCSR(in, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices != 4 || st.NumEdges != 3 {
		t.Fatalf("stats = %+v", st)
	}
	adj, _, _, _ := readBack(t, out, false)
	if !reflect.DeepEqual(adj[0], []graph.VertexID{2, 3}) || !reflect.DeepEqual(adj[2], []graph.VertexID{1}) {
		t.Fatalf("adj = %v", adj)
	}
}

func TestEdgeListWeighted(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(in, []byte("0 1 2.5\n1 0 0.25\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "g.gpsa")
	if _, err := EdgeListToCSR(in, out, Options{Weighted: true}); err != nil {
		t.Fatal(err)
	}
	_, wts, _, _ := readBack(t, out, true)
	if wts[0][0] != 2.5 || wts[1][0] != 0.25 {
		t.Fatalf("weights = %v", wts)
	}
}

func TestEdgeListRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for i, bad := range []string{"x y\n", "1\n", "1 2 notaweight\n", "99999999999 1\n"} {
		in := filepath.Join(dir, "bad.txt")
		if err := os.WriteFile(in, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := EdgeListToCSR(in, filepath.Join(dir, "out.gpsa"), Options{}); err == nil {
			t.Errorf("case %d (%q): conversion succeeded", i, bad)
		}
	}
}

func TestEmptyInputYieldsValidFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "g.gpsa")
	st, err := EdgeListToCSR(in, out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumEdges != 0 {
		t.Fatalf("stats = %+v", st)
	}
	_, _, nv, ne := readBack(t, out, false)
	if nv != 1 || ne != 0 {
		t.Fatalf("file dims (%d, %d)", nv, ne)
	}
}

func TestForcedVertexCount(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.gpsa")
	st, err := EdgesToCSR([]graph.Edge{{Src: 0, Dst: 1}}, out, Options{NumVertices: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := EdgesToCSR([]graph.Edge{{Src: 0, Dst: 9}}, out, Options{NumVertices: 5}); err == nil {
		t.Fatal("too-small forced vertex count accepted")
	}
}

func TestMultiRunExternalSort(t *testing.T) {
	// Tiny chunk size forces many sorted runs and a real k-way merge.
	edges, err := gen.RMAT(gen.RMATConfig{Vertices: 300, Edges: 5000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "g.gpsa")
	st, err := EdgesToCSR(edges, out, Options{ChunkEdges: 128})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs < 30 {
		t.Fatalf("expected many runs, got %d", st.Runs)
	}
	want, err := graph.FromEdges(edges, st.NumVertices, false)
	if err != nil {
		t.Fatal(err)
	}
	adj, _, _, ne := readBack(t, out, false)
	if ne != int64(len(edges)) {
		t.Fatalf("edge count %d, want %d", ne, len(edges))
	}
	for v := int64(0); v < want.NumVertices; v++ {
		got := append([]graph.VertexID(nil), adj[v]...)
		exp := append([]graph.VertexID(nil), want.Neighbors(graph.VertexID(v))...)
		sortIDs(got)
		sortIDs(exp)
		if !reflect.DeepEqual(got, exp) {
			t.Fatalf("vertex %d: %v, want %v", v, got, exp)
		}
	}
	// Temp runs must be cleaned up.
	entries, err := os.ReadDir(filepath.Dir(out))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) > 8 && e.Name()[:8] == "gpsa-run" {
			t.Fatalf("leftover run file %s", e.Name())
		}
	}
}

func sortIDs(s []graph.VertexID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Property: conversion through the external sort equals direct in-memory
// CSR construction for any random edge list and chunk size.
func TestConversionEquivalenceProperty(t *testing.T) {
	dir := t.TempDir()
	n := 0
	fn := func(seed int64, eRaw uint16, chunkRaw uint8) bool {
		n++
		rng := rand.New(rand.NewSource(seed))
		v := int64(40)
		edges := make([]graph.Edge, int(eRaw%600))
		for i := range edges {
			edges[i] = graph.Edge{Src: graph.VertexID(rng.Int63n(v)), Dst: graph.VertexID(rng.Int63n(v))}
		}
		out := filepath.Join(dir, "p.gpsa")
		_, err := EdgesToCSR(edges, out, Options{ChunkEdges: int(chunkRaw%64) + 1, NumVertices: v})
		if err != nil {
			t.Logf("convert: %v", err)
			return false
		}
		want, err := graph.FromEdges(edges, v, false)
		if err != nil {
			return false
		}
		f, err := graph.OpenFile(out, mmap.ModeAuto)
		if err != nil {
			return false
		}
		defer f.Close()
		c := f.Cursor(f.WholeInterval())
		for {
			vid, deg, raw, ok := c.Next()
			if !ok {
				break
			}
			got := make([]graph.VertexID, deg)
			for i := range got {
				got[i], _ = graph.DecodeEdge(raw, i, false)
			}
			exp := append([]graph.VertexID(nil), want.Neighbors(graph.VertexID(vid))...)
			sortIDs(got)
			sortIDs(exp)
			if len(got) != len(exp) {
				return false
			}
			if len(got) > 0 && !reflect.DeepEqual(got, exp) {
				return false
			}
		}
		return c.Err() == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactOutputMatchesPlain(t *testing.T) {
	edges, err := gen.RMAT(gen.RMATConfig{Vertices: 300, Edges: 4000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	plain, compact := filepath.Join(dir, "p.gpsa"), filepath.Join(dir, "c.gpsa")
	if _, err := EdgesToCSR(edges, plain, Options{ChunkEdges: 256}); err != nil {
		t.Fatal(err)
	}
	if _, err := EdgesToCSR(edges, compact, Options{ChunkEdges: 256, Compact: true}); err != nil {
		t.Fatal(err)
	}
	pa, _, pv, pe := readBack(t, plain, false)
	ca, _, cv, ce := readBack(t, compact, false)
	if pv != cv || pe != ce {
		t.Fatalf("dims differ: (%d,%d) vs (%d,%d)", pv, pe, cv, ce)
	}
	for v := int64(0); v < pv; v++ {
		a := append([]graph.VertexID(nil), pa[v]...)
		b := append([]graph.VertexID(nil), ca[v]...)
		sortIDs(a)
		sortIDs(b)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: %d vs %d edges", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
	ps, _ := os.Stat(plain)
	cs, _ := os.Stat(compact)
	if cs.Size() >= ps.Size() {
		t.Fatalf("compact (%d) not smaller than plain (%d)", cs.Size(), ps.Size())
	}
}
