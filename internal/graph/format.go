package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"io"
	"math"
	"os"

	"repro/internal/diskio"
	"repro/internal/mmap"
)

// csrSink couples the fault-injectable output file with the incremental
// FNV-1a digest the ".sum" sidecar seals: every byte the bufio layer
// flushes passes through exactly once, so sealing costs no second read
// of the finished file. Only bytes that actually reached the file are
// hashed — a short write leaves digest and file consistent.
type csrSink struct {
	f *diskio.File
	h hash.Hash64
	n int64
}

func (s *csrSink) Write(p []byte) (int, error) {
	n, err := s.f.Write(p)
	s.h.Write(p[:n])
	s.n += int64(n)
	return n, err
}

// On-disk CSR format (paper Fig. 4, "a CSR file with vertex degrees"):
//
//	header (40 bytes, little endian):
//	  magic       uint32  "GPSA"
//	  version     uint32
//	  flags       uint64  bit 0: weighted
//	  numVertices uint64
//	  numEdges    uint64
//	  reserved    uint64
//	records, one per vertex in id order:
//	  degree      uint32
//	  edges       degree × uint32 destination
//	              (weighted: degree × [uint32 destination, float32 bits])
//	  sentinel    uint32 = 0xFFFFFFFF   (the paper's "-1" separator)
//
// A sidecar index file (path + ".idx") records, every stride vertices, the
// word offset of the vertex's record within the record region and the
// cumulative edge count, enabling O(1) balanced partitioning of the edge
// stream across dispatcher actors without materializing indptr.

const (
	fileMagic   = 0x41535047 // "GPSA"
	fileVersion = 1
	idxMagic    = 0x58445047 // "GPDX"

	flagWeighted = 1 << 0

	headerBytes = 40
)

// IndexEntry locates the record of FirstVertex within the record region.
type IndexEntry struct {
	FirstVertex int64
	WordOff     int64 // offset in 4-byte words from the record region start
	CumEdges    int64 // edges of all vertices before FirstVertex
}

// Interval is a contiguous range of vertices assigned to one dispatcher:
// ids [FirstVertex, EndVertex) occupying words [StartWord, EndWord) of the
// record region and containing Edges edges. This is the paper's
// "interval" structure (§V-D).
type Interval struct {
	FirstVertex int64
	EndVertex   int64
	StartWord   int64
	EndWord     int64
	Edges       int64
}

// Writer streams a CSR file vertex by vertex, building the sidecar index
// as it goes. Vertices must be appended in id order, exactly NumVertices
// of them, with edge counts summing to NumEdges.
type Writer struct {
	w        *bufio.Writer
	sink     *csrSink
	path     string
	idxPath  string
	weighted bool

	numVertices int64
	numEdges    int64
	stride      int64

	nextVertex int64
	cumEdges   int64
	wordOff    int64
	index      []IndexEntry

	scratch [4]byte
}

// NewWriter creates path (and path+".idx" at Finish) for a graph with the
// given dimensions.
func NewWriter(path string, numVertices, numEdges int64, weighted bool) (*Writer, error) {
	if numVertices < 0 || numVertices > MaxVertices {
		return nil, fmt.Errorf("graph: writer: vertex count %d out of range", numVertices)
	}
	if numEdges < 0 {
		return nil, fmt.Errorf("graph: writer: negative edge count")
	}
	f, err := diskio.Create(path)
	if err != nil {
		return nil, fmt.Errorf("graph: writer: %w", err)
	}
	sink := &csrSink{f: f, h: newCSRHash()}
	w := &Writer{
		w:           bufio.NewWriterSize(sink, 1<<20),
		sink:        sink,
		path:        path,
		idxPath:     path + ".idx",
		weighted:    weighted,
		numVertices: numVertices,
		numEdges:    numEdges,
		stride:      indexStride(numVertices),
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	var flags uint64
	if weighted {
		flags |= flagWeighted
	}
	binary.LittleEndian.PutUint64(hdr[8:], flags)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(numVertices))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(numEdges))
	if _, err := w.w.Write(hdr[:]); err != nil {
		f.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
		return nil, fmt.Errorf("graph: writer header: %w", err)
	}
	return w, nil
}

func indexStride(numVertices int64) int64 {
	s := numVertices / 8192
	if s < 1 {
		s = 1
	}
	return s
}

func (w *Writer) putWord(x uint32) error {
	binary.LittleEndian.PutUint32(w.scratch[:], x)
	_, err := w.w.Write(w.scratch[:])
	w.wordOff++
	return err
}

// AppendVertex writes the record for the next vertex. For unweighted
// graphs weights must be nil; for weighted graphs it must have len(dsts).
func (w *Writer) AppendVertex(dsts []VertexID, weights []float32) error {
	if w.nextVertex >= w.numVertices {
		return fmt.Errorf("graph: writer: vertex %d beyond declared count %d", w.nextVertex, w.numVertices)
	}
	if w.weighted != (weights != nil) {
		return fmt.Errorf("graph: writer: weights presence mismatch (file weighted=%v)", w.weighted)
	}
	if weights != nil && len(weights) != len(dsts) {
		return fmt.Errorf("graph: writer: %d weights for %d edges", len(weights), len(dsts))
	}
	if w.nextVertex%w.stride == 0 {
		w.index = append(w.index, IndexEntry{FirstVertex: w.nextVertex, WordOff: w.wordOff, CumEdges: w.cumEdges})
	}
	if err := w.putWord(uint32(len(dsts))); err != nil {
		return err
	}
	for i, d := range dsts {
		if int64(d) >= w.numVertices {
			return fmt.Errorf("graph: writer: vertex %d edge targets %d outside [0,%d)", w.nextVertex, d, w.numVertices)
		}
		if err := w.putWord(d); err != nil {
			return err
		}
		if w.weighted {
			if err := w.putWord(math.Float32bits(weights[i])); err != nil {
				return err
			}
		}
	}
	if err := w.putWord(Sentinel); err != nil {
		return err
	}
	w.nextVertex++
	w.cumEdges += int64(len(dsts))
	return nil
}

// Finish flushes and fsyncs the data file, writes the sidecar index,
// and seals the ".sum" checksum sidecar. It must be called exactly
// once, after all vertices have been appended.
func (w *Writer) Finish() error {
	if w.nextVertex != w.numVertices {
		w.sink.f.Close() //lint:syncerr error path: the append protocol already failed
		return fmt.Errorf("graph: writer: %d vertices appended, declared %d", w.nextVertex, w.numVertices)
	}
	if w.cumEdges != w.numEdges {
		w.sink.f.Close() //lint:syncerr error path: the append protocol already failed
		return fmt.Errorf("graph: writer: %d edges appended, declared %d", w.cumEdges, w.numEdges)
	}
	w.index = append(w.index, IndexEntry{FirstVertex: w.numVertices, WordOff: w.wordOff, CumEdges: w.cumEdges})
	if err := w.w.Flush(); err != nil {
		w.sink.f.Close() //lint:syncerr error path: the flush already failed and is being reported
		return fmt.Errorf("graph: writer flush: %w", err)
	}
	if err := w.sink.f.Sync(); err != nil {
		w.sink.f.Close() //lint:syncerr error path: the sync already failed and is being reported
		return fmt.Errorf("graph: writer sync: %w", err)
	}
	if err := w.sink.f.Close(); err != nil {
		return fmt.Errorf("graph: writer close: %w", err)
	}
	if err := writeIndex(w.idxPath, w.stride, w.index); err != nil {
		return err
	}
	return sealCSR(w.path, w.sink.h.Sum64(), w.sink.n)
}

func writeIndex(path string, stride int64, entries []IndexEntry) error {
	f, err := diskio.Create(path)
	if err != nil {
		return fmt.Errorf("graph: index: %w", err)
	}
	bw := bufio.NewWriter(f)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], idxMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(stride))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(entries)))
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
		return err
	}
	var rec [24]byte
	for _, e := range entries {
		binary.LittleEndian.PutUint64(rec[0:], uint64(e.FirstVertex))
		binary.LittleEndian.PutUint64(rec[8:], uint64(e.WordOff))
		binary.LittleEndian.PutUint64(rec[16:], uint64(e.CumEdges))
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close() //lint:syncerr error path: the flush already failed and is being reported
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:syncerr error path: the sync already failed and is being reported
		return err
	}
	return f.Close()
}

func readIndex(path string) (stride int64, entries []IndexEntry, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close() //lint:syncerr read-only handle; no durability contract on close
	br := bufio.NewReader(f)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("graph: index header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != idxMagic {
		return 0, nil, fmt.Errorf("graph: %s: bad index magic", path)
	}
	stride = int64(binary.LittleEndian.Uint64(hdr[8:]))
	n := int64(binary.LittleEndian.Uint64(hdr[16:]))
	entries = make([]IndexEntry, 0, n)
	var rec [24]byte
	for i := int64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return 0, nil, fmt.Errorf("graph: index entry %d: %w", i, err)
		}
		entries = append(entries, IndexEntry{
			FirstVertex: int64(binary.LittleEndian.Uint64(rec[0:])),
			WordOff:     int64(binary.LittleEndian.Uint64(rec[8:])),
			CumEdges:    int64(binary.LittleEndian.Uint64(rec[16:])),
		})
	}
	return stride, entries, nil
}

// WriteFile writes g to path in the on-disk CSR format (plus sidecar
// index).
func WriteFile(path string, g *CSR) error {
	if err := g.Validate(); err != nil {
		return err
	}
	w, err := NewWriter(path, g.NumVertices, g.NumEdges, g.Weighted())
	if err != nil {
		return err
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if err := w.AppendVertex(g.Neighbors(VertexID(v)), g.EdgeWeights(VertexID(v))); err != nil {
			return err
		}
	}
	return w.Finish()
}

// File is an opened on-disk CSR graph, memory mapped. It is safe for
// concurrent cursors.
type File struct {
	Path        string
	NumVertices int64
	NumEdges    int64
	weighted    bool
	version     uint32

	m      *mmap.Map
	raw    []byte   // whole mapping
	words  []uint32 // record region (version 1)
	stride int64
	index  []IndexEntry
}

// OpenFile maps the CSR file at path. The sidecar index is loaded if
// present and rebuilt by a sequential scan otherwise.
func OpenFile(path string, mode mmap.Mode) (*File, error) {
	m, err := mmap.Open(path, mmap.Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	b := m.Bytes()
	if len(b) < headerBytes {
		m.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
		return nil, fmt.Errorf("graph: %s: truncated header", path)
	}
	if binary.LittleEndian.Uint32(b[0:]) != fileMagic {
		m.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
		return nil, fmt.Errorf("graph: %s: bad magic", path)
	}
	version := binary.LittleEndian.Uint32(b[4:])
	if version != fileVersion && version != fileVersionCompact {
		m.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
		return nil, fmt.Errorf("graph: %s: unsupported version %d", path, version)
	}
	flags := binary.LittleEndian.Uint64(b[8:])
	f := &File{
		Path:        path,
		NumVertices: int64(binary.LittleEndian.Uint64(b[16:])),
		NumEdges:    int64(binary.LittleEndian.Uint64(b[24:])),
		weighted:    flags&flagWeighted != 0,
		version:     version,
		m:           m,
		//lint:colalias read-only CSR mapping; File owns m and the view is never written through
		raw: b,
	}
	if version == fileVersion {
		nWords := (int64(len(b)) - headerBytes) / 4
		//lint:colalias read-only CSR word view; File owns m and the view is never written through
		f.words, err = m.Uint32s(headerBytes, nWords)
		if err != nil {
			m.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
			return nil, err
		}
		wantWords := f.NumVertices*2 + f.NumEdges*f.edgeWords()
		if nWords < wantWords {
			m.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
			return nil, fmt.Errorf("graph: %s: %d record words, want %d", path, nWords, wantWords)
		}
	}
	if f.stride, f.index, err = readIndex(path + ".idx"); err != nil {
		if !os.IsNotExist(err) {
			m.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
			return nil, err
		}
		var rerr error
		if version == fileVersionCompact {
			rerr = f.rebuildIndexCompact()
		} else {
			rerr = f.rebuildIndex()
		}
		if rerr != nil {
			m.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
			return nil, rerr
		}
	}
	if err := f.checkIndex(); err != nil {
		m.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
		return nil, err
	}
	return f, nil
}

func (f *File) edgeWords() int64 {
	if f.weighted {
		return 2
	}
	return 1
}

// rebuildIndex scans the record region to reconstruct the sidecar index.
func (f *File) rebuildIndex() error {
	f.stride = indexStride(f.NumVertices)
	f.index = f.index[:0]
	var off, cum int64
	ew := f.edgeWords()
	for v := int64(0); v < f.NumVertices; v++ {
		if v%f.stride == 0 {
			f.index = append(f.index, IndexEntry{FirstVertex: v, WordOff: off, CumEdges: cum})
		}
		if off >= int64(len(f.words)) {
			return fmt.Errorf("graph: %s: truncated at vertex %d", f.Path, v)
		}
		deg := int64(f.words[off])
		off += 1 + deg*ew + 1
		cum += deg
	}
	f.index = append(f.index, IndexEntry{FirstVertex: f.NumVertices, WordOff: off, CumEdges: cum})
	return nil
}

// checkIndex validates the final index entry against the header counts.
func (f *File) checkIndex() error {
	if len(f.index) == 0 {
		return fmt.Errorf("graph: %s: empty index", f.Path)
	}
	last := f.index[len(f.index)-1]
	if last.FirstVertex != f.NumVertices || last.CumEdges != f.NumEdges {
		return fmt.Errorf("graph: %s: index terminal entry (%d vertices, %d edges) disagrees with header (%d, %d)",
			f.Path, last.FirstVertex, last.CumEdges, f.NumVertices, f.NumEdges)
	}
	limit := int64(len(f.words))
	if f.version == fileVersionCompact {
		limit = int64(len(f.raw)) - headerBytes
	}
	if last.WordOff > limit {
		return fmt.Errorf("graph: %s: index end offset %d beyond record region (%d)", f.Path, last.WordOff, limit)
	}
	return nil
}

// Weighted reports whether edges carry weights.
func (f *File) Weighted() bool { return f.weighted }

// AdviseSequential hints the kernel that the mapping will be streamed
// (the dispatcher access pattern); best-effort and a no-op for memory
// images.
func (f *File) AdviseSequential() error {
	if f.m == nil {
		return nil
	}
	return f.m.Advise(mmap.AccessSequential)
}

// SupportsAdvise reports whether the file is backed by a real mapping
// that can accept ranged access-pattern advice. Memory images (and the
// heap fallback, transparently) have nothing to advise.
func (f *File) SupportsAdvise() bool { return f.m != nil }

// UnitBytes returns the byte width of one interval/cursor offset unit:
// 4 for version-1 word offsets, 1 for the compact format's byte
// offsets. Callers holding Interval or Cursor.Pos offsets multiply by
// this to reason about file bytes.
func (f *File) UnitBytes() int64 {
	if f.version == fileVersionCompact {
		return 1
	}
	return 4
}

// AdviseRange re-advises the record-region span [startOff, endOff) —
// offsets in the file version's interval units, as carried by Interval
// and Cursor.Pos — translating them to byte ranges of the mapping.
// This is the primitive behind async CSR prefetch: AccessWillNeed
// ahead of the streaming cursor, AccessDontNeed behind it. Best-effort
// and a no-op for memory images or empty ranges.
func (f *File) AdviseRange(startOff, endOff int64, pattern mmap.Access) error {
	if f.m == nil || endOff <= startOff {
		return nil
	}
	u := f.UnitBytes()
	return f.m.AdviseRange(headerBytes+startOff*u, (endOff-startOff)*u, pattern)
}

// Close unmaps the file (no-op for memory images).
func (f *File) Close() error {
	if f.m == nil {
		return nil
	}
	return f.m.Close()
}

// WholeInterval returns the interval covering the entire graph.
func (f *File) WholeInterval() Interval {
	last := f.index[len(f.index)-1]
	return Interval{
		FirstVertex: 0,
		EndVertex:   f.NumVertices,
		StartWord:   0,
		EndWord:     last.WordOff,
		Edges:       f.NumEdges,
	}
}

// Partition splits the graph into at most n intervals with approximately
// equal edge counts (the paper's "assign vertices to the dispatcher
// worker by the average edges" strategy, §V-A). Interval boundaries snap
// to index entries; fewer than n intervals are returned when the graph is
// too small to split further.
func (f *File) Partition(n int) []Interval {
	if n < 1 {
		n = 1
	}
	bounds := []IndexEntry{f.index[0]}
	for k := 1; k < n; k++ {
		target := f.NumEdges * int64(k) / int64(n)
		// First index entry with CumEdges >= target.
		lo, hi := 0, len(f.index)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if f.index[mid].CumEdges < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		e := f.index[lo]
		if e.FirstVertex > bounds[len(bounds)-1].FirstVertex && e.FirstVertex < f.NumVertices {
			bounds = append(bounds, e)
		}
	}
	bounds = append(bounds, f.index[len(f.index)-1])

	ivs := make([]Interval, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		ivs = append(ivs, Interval{
			FirstVertex: a.FirstVertex,
			EndVertex:   b.FirstVertex,
			StartWord:   a.WordOff,
			EndWord:     b.WordOff,
			Edges:       b.CumEdges - a.CumEdges,
		})
	}
	return ivs
}

// PartitionByVertices splits the graph into at most n intervals with
// approximately equal vertex counts (the paper's "simple mod algorithm"
// alternative, §V-A), snapped to index entries.
func (f *File) PartitionByVertices(n int) []Interval {
	if n < 1 {
		n = 1
	}
	bounds := []IndexEntry{f.index[0]}
	for k := 1; k < n; k++ {
		target := f.NumVertices * int64(k) / int64(n)
		lo, hi := 0, len(f.index)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if f.index[mid].FirstVertex < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		e := f.index[lo]
		if e.FirstVertex > bounds[len(bounds)-1].FirstVertex && e.FirstVertex < f.NumVertices {
			bounds = append(bounds, e)
		}
	}
	bounds = append(bounds, f.index[len(f.index)-1])

	ivs := make([]Interval, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		ivs = append(ivs, Interval{
			FirstVertex: a.FirstVertex,
			EndVertex:   b.FirstVertex,
			StartWord:   a.WordOff,
			EndWord:     b.WordOff,
			Edges:       b.CumEdges - a.CumEdges,
		})
	}
	return ivs
}

// Cursor returns a sequential reader over the records of iv. Cursors are
// single-goroutine objects; compact-format cursors decode into an
// internal scratch buffer that Next reuses, so the returned edge slice is
// only valid until the next call.
func (f *File) Cursor(iv Interval) *Cursor {
	return &Cursor{
		words:    f.words,
		bytes:    f.bytesRegionSafe(),
		version:  f.version,
		pos:      iv.StartWord,
		end:      iv.EndWord,
		v:        iv.FirstVertex,
		endV:     iv.EndVertex,
		weighted: f.weighted,
	}
}

func (f *File) bytesRegionSafe() []byte {
	if len(f.raw) < headerBytes {
		return nil
	}
	return f.raw[headerBytes:]
}

// Cursor streams vertex records sequentially; this is the access pattern
// of a GPSA dispatcher actor (§V-D: "the dispatcher worker can identify
// which vertex it is processing" from the id sequence and offsets).
type Cursor struct {
	words    []uint32 // version 1 record region
	bytes    []byte   // version 2 record region
	version  uint32
	pos, end int64
	v, endV  int64
	weighted bool
	scratch  []uint32 // version 2 decode buffer
	err      error
}

// Next advances to the next vertex record. edges holds deg raw words for
// unweighted files and 2×deg interleaved (dst, float32-bits) words for
// weighted files; it aliases the mapping and must not be retained across
// Close. ok is false at the end of the interval or on a corrupt record
// (check Err).
//
//gpsa:noalloc
func (c *Cursor) Next() (v int64, deg uint32, edges []uint32, ok bool) {
	if c.version == fileVersionCompact {
		return c.nextCompact()
	}
	if c.err != nil || c.v >= c.endV || c.pos >= c.end {
		return 0, 0, nil, false
	}
	deg = c.words[c.pos]
	ew := int64(1)
	if c.weighted {
		ew = 2
	}
	recEnd := c.pos + 1 + int64(deg)*ew // sentinel position
	if recEnd+1 > c.end || recEnd >= int64(len(c.words)) {
		c.err = fmt.Errorf("graph: cursor: vertex %d record overruns interval", c.v)
		return 0, 0, nil, false
	}
	if c.words[recEnd] != Sentinel {
		c.err = fmt.Errorf("graph: cursor: vertex %d missing sentinel", c.v)
		return 0, 0, nil, false
	}
	v = c.v
	edges = c.words[c.pos+1 : recEnd]
	c.pos = recEnd + 1
	c.v++
	return v, deg, edges, true
}

// Err returns the first corruption error encountered, if any.
func (c *Cursor) Err() error { return c.err }

// Pos returns the cursor's current offset within the record region, in
// the file version's interval units (comparable to Interval.StartWord
// and EndWord). The async prefetch actor samples it to pace a WILLNEED
// window ahead of the stream and a DONTNEED trail behind it.
func (c *Cursor) Pos() int64 { return c.pos }

// DecodeEdge extracts edge i from a raw edge slice returned by Next.
//
//gpsa:noalloc
func DecodeEdge(edges []uint32, i int, weighted bool) (dst VertexID, w float32) {
	if weighted {
		return edges[2*i], math.Float32frombits(edges[2*i+1])
	}
	return edges[i], 0
}
