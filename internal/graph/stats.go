package graph

import (
	"fmt"
	"math/bits"
	"strings"
)

// FileStats summarizes an on-disk CSR graph; computed by one sequential
// scan of the record region.
type FileStats struct {
	NumVertices   int64
	NumEdges      int64
	Weighted      bool
	MaxOutDegree  uint32
	MaxOutVertex  VertexID
	ZeroOutDegree int64
	AvgOutDegree  float64
	SelfLoops     int64
	// DegreeHist counts vertices per log2 out-degree bucket: bucket 0 is
	// degree 0, bucket 1 is degree 1, bucket k (k>1) is [2^(k-1), 2^k).
	DegreeHist []int64
}

// Stats scans the graph and returns its summary.
func (f *File) Stats() (FileStats, error) {
	st := FileStats{
		NumVertices: f.NumVertices,
		NumEdges:    f.NumEdges,
		Weighted:    f.weighted,
		DegreeHist:  make([]int64, 34),
	}
	c := f.Cursor(f.WholeInterval())
	for {
		v, deg, edges, ok := c.Next()
		if !ok {
			break
		}
		if deg > st.MaxOutDegree {
			st.MaxOutDegree = deg
			st.MaxOutVertex = VertexID(v)
		}
		if deg == 0 {
			st.ZeroOutDegree++
		}
		st.DegreeHist[degreeBucket(deg)]++
		for i := 0; i < int(deg); i++ {
			dst, _ := DecodeEdge(edges, i, f.weighted)
			if int64(dst) == v {
				st.SelfLoops++
			}
		}
	}
	if err := c.Err(); err != nil {
		return st, err
	}
	if st.NumVertices > 0 {
		st.AvgOutDegree = float64(st.NumEdges) / float64(st.NumVertices)
	}
	// Trim empty high buckets.
	last := len(st.DegreeHist)
	for last > 1 && st.DegreeHist[last-1] == 0 {
		last--
	}
	st.DegreeHist = st.DegreeHist[:last]
	return st, nil
}

func degreeBucket(deg uint32) int {
	if deg == 0 {
		return 0
	}
	return bits.Len32(deg)
}

// BucketLabel names a degree-histogram bucket.
func BucketLabel(bucket int) string {
	switch bucket {
	case 0:
		return "0"
	case 1:
		return "1"
	default:
		return fmt.Sprintf("%d-%d", 1<<(bucket-1), 1<<bucket-1)
	}
}

// String renders the stats for human consumption.
func (st FileStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vertices:      %d\n", st.NumVertices)
	fmt.Fprintf(&b, "edges:         %d (weighted: %v, self-loops: %d)\n", st.NumEdges, st.Weighted, st.SelfLoops)
	fmt.Fprintf(&b, "avg out-deg:   %.2f\n", st.AvgOutDegree)
	fmt.Fprintf(&b, "max out-deg:   %d (vertex %d)\n", st.MaxOutDegree, st.MaxOutVertex)
	fmt.Fprintf(&b, "zero out-deg:  %d\n", st.ZeroOutDegree)
	fmt.Fprintf(&b, "out-degree histogram:\n")
	for i, n := range st.DegreeHist {
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %12s: %d\n", BucketLabel(i), n)
	}
	return b.String()
}
