package graph

import (
	"encoding/binary"
	"fmt"
)

// Compact CSR format (version 2) — an optional, denser on-disk encoding.
//
// The paper leans on CSR compression (twitter-2010's 26 GB edge list
// becomes 6.5 GB of CSR); version 2 pushes further with the standard
// varint-delta trick: each vertex's record is
//
//	uvarint(degree)
//	degree × uvarint(delta)     — destinations sorted ascending;
//	                              delta_0 = dst_0, delta_k = dst_k - dst_{k-1}
//	degree × float32 bits        (weighted files only, raw)
//
// Social-graph adjacency lists are dominated by small deltas, so most
// edges cost 1–2 bytes instead of 4. Records are self-delimiting (no
// sentinel). The header matches version 1 except version = 2, and the
// sidecar index stores byte offsets instead of word offsets. Cursors
// decode into a reusable scratch buffer, so the engine-facing interface
// (Next returning a raw edge slice) is unchanged.

const fileVersionCompact = 2

// WriteFileCompact writes g at path in the compact (version 2) format.
// Adjacency lists are sorted as a side effect of delta encoding; programs
// must not depend on edge order (none of the engines do).
func WriteFileCompact(path string, g *CSR) error {
	if err := g.Validate(); err != nil {
		return err
	}
	w, err := NewCompactWriter(path, g.NumVertices, g.NumEdges, g.Weighted())
	if err != nil {
		return err
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if err := w.AppendVertex(g.Neighbors(VertexID(v)), g.EdgeWeights(VertexID(v))); err != nil {
			return err
		}
	}
	return w.Finish()
}

// rebuildIndexCompact scans the byte stream to reconstruct the index.
func (f *File) rebuildIndexCompact() error {
	f.stride = indexStride(f.NumVertices)
	f.index = f.index[:0]
	var off, cum int64
	data := f.bytesRegion()
	for v := int64(0); v < f.NumVertices; v++ {
		if v%f.stride == 0 {
			f.index = append(f.index, IndexEntry{FirstVertex: v, WordOff: off, CumEdges: cum})
		}
		deg, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return fmt.Errorf("graph: %s: corrupt varint degree at vertex %d", f.Path, v)
		}
		off += int64(n)
		for i := uint64(0); i < deg; i++ {
			_, n := binary.Uvarint(data[off:])
			if n <= 0 {
				return fmt.Errorf("graph: %s: corrupt varint delta at vertex %d", f.Path, v)
			}
			off += int64(n)
		}
		if f.weighted {
			off += 4 * int64(deg)
		}
		cum += int64(deg)
	}
	f.index = append(f.index, IndexEntry{FirstVertex: f.NumVertices, WordOff: off, CumEdges: cum})
	return nil
}

// bytesRegion returns the record region as bytes (compact format).
func (f *File) bytesRegion() []byte { return f.raw[headerBytes:] }

// nextCompact advances a cursor over the compact byte stream.
//
//gpsa:noalloc
func (c *Cursor) nextCompact() (v int64, deg uint32, edges []uint32, ok bool) {
	if c.err != nil || c.v >= c.endV || c.pos >= c.end {
		return 0, 0, nil, false
	}
	data := c.bytes
	d, n := binary.Uvarint(data[c.pos:c.end])
	if n <= 0 || d > uint64(MaxVertices) {
		c.err = fmt.Errorf("graph: cursor: vertex %d corrupt degree", c.v)
		return 0, 0, nil, false
	}
	c.pos += int64(n)
	deg = uint32(d)

	ew := 1
	if c.weighted {
		ew = 2
	}
	need := int(deg) * ew
	if cap(c.scratch) < need {
		//lint:noalloc amortized decode-scratch growth: capacity persists across records, so steady state never reallocates
		c.scratch = make([]uint32, need)
	}
	c.scratch = c.scratch[:need]

	prev := uint64(0)
	for i := 0; i < int(deg); i++ {
		delta, n := binary.Uvarint(data[c.pos:c.end])
		if n <= 0 {
			c.err = fmt.Errorf("graph: cursor: vertex %d corrupt delta", c.v)
			return 0, 0, nil, false
		}
		c.pos += int64(n)
		prev += delta
		if i == 0 {
			prev = delta
		}
		if prev > uint64(MaxVertices) {
			c.err = fmt.Errorf("graph: cursor: vertex %d destination overflow", c.v)
			return 0, 0, nil, false
		}
		c.scratch[i*ew] = uint32(prev)
	}
	if c.weighted {
		if c.pos+4*int64(deg) > c.end {
			c.err = fmt.Errorf("graph: cursor: vertex %d weights overrun interval", c.v)
			return 0, 0, nil, false
		}
		for i := 0; i < int(deg); i++ {
			c.scratch[i*2+1] = binary.LittleEndian.Uint32(data[c.pos:])
			c.pos += 4
		}
	}
	v = c.v
	c.v++
	return v, deg, c.scratch, true
}
