package graph

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mmap"
)

func writeTemp(t *testing.T, g *CSR) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.gpsa")
	if err := WriteFile(path, g); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func readAll(t *testing.T, f *File, iv Interval) map[int64][]VertexID {
	t.Helper()
	out := make(map[int64][]VertexID)
	c := f.Cursor(iv)
	for {
		v, deg, edges, ok := c.Next()
		if !ok {
			break
		}
		dsts := make([]VertexID, deg)
		for i := range dsts {
			d, _ := DecodeEdge(edges, i, f.Weighted())
			dsts[i] = d
		}
		out[v] = dsts
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cursor: %v", err)
	}
	return out
}

func TestFileRoundTrip(t *testing.T) {
	g := paperExample(t)
	path := writeTemp(t, g)

	f, err := OpenFile(path, mmap.ModeAuto)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	if f.NumVertices != 4 || f.NumEdges != 6 || f.Weighted() {
		t.Fatalf("header = (%d, %d, %v)", f.NumVertices, f.NumEdges, f.Weighted())
	}
	got := readAll(t, f, f.WholeInterval())
	for v := int64(0); v < 4; v++ {
		want := g.Neighbors(VertexID(v))
		if len(want) == 0 && len(got[v]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got[v], want) {
			t.Fatalf("vertex %d: %v, want %v", v, got[v], want)
		}
	}
}

func TestFileWeightedRoundTrip(t *testing.T) {
	g, err := FromEdges([]Edge{
		{Src: 0, Dst: 1, Weight: 0.5}, {Src: 0, Dst: 2, Weight: 1.25}, {Src: 2, Dst: 0, Weight: -3},
	}, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, g)
	f, err := OpenFile(path, mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Weighted() {
		t.Fatal("weighted flag lost")
	}
	c := f.Cursor(f.WholeInterval())
	v, deg, edges, ok := c.Next()
	if !ok || v != 0 || deg != 2 {
		t.Fatalf("first record = (%d, %d, %v)", v, deg, ok)
	}
	d0, w0 := DecodeEdge(edges, 0, true)
	d1, w1 := DecodeEdge(edges, 1, true)
	if d0 != 1 || w0 != 0.5 || d1 != 2 || w1 != 1.25 {
		t.Fatalf("edges = (%d,%g) (%d,%g)", d0, w0, d1, w1)
	}
}

func TestFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.gpsa")
	if err := os.WriteFile(path, []byte("this is not a gpsa file at all........."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, mmap.ModeAuto); err == nil {
		t.Fatal("garbage file opened successfully")
	}
}

func TestFileIndexRebuild(t *testing.T) {
	g := paperExample(t)
	path := writeTemp(t, g)
	if err := os.Remove(path + ".idx"); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path, mmap.ModeAuto)
	if err != nil {
		t.Fatalf("OpenFile without index: %v", err)
	}
	defer f.Close()
	got := readAll(t, f, f.WholeInterval())
	if !reflect.DeepEqual(got[0], []VertexID{2, 3}) {
		t.Fatalf("vertex 0 after rebuild: %v", got[0])
	}
}

func TestWriterEnforcesDeclaredCounts(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(filepath.Join(dir, "a.gpsa"), 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendVertex([]VertexID{1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err == nil {
		t.Fatal("Finish with missing vertices succeeded")
	}

	w, err = NewWriter(filepath.Join(dir, "b.gpsa"), 1, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendVertex([]VertexID{0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err == nil {
		t.Fatal("Finish with missing edges succeeded")
	}

	w, err = NewWriter(filepath.Join(dir, "c.gpsa"), 1, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendVertex([]VertexID{5}, nil); err == nil {
		t.Fatal("out-of-range destination accepted")
	}

	w, err = NewWriter(filepath.Join(dir, "d.gpsa"), 1, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendVertex([]VertexID{0}, nil); err == nil {
		t.Fatal("weighted file accepted nil weights")
	}
}

func TestPartitionCoversGraphExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const v = 1000
	g, err := FromEdges(randomEdges(rng, v, 8000), v, false)
	if err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, g)
	f, err := OpenFile(path, mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for _, n := range []int{1, 2, 3, 7, 16} {
		ivs := f.Partition(n)
		if len(ivs) == 0 || len(ivs) > n {
			t.Fatalf("Partition(%d) returned %d intervals", n, len(ivs))
		}
		var vertices, edges int64
		prevEnd := int64(0)
		for _, iv := range ivs {
			if iv.FirstVertex != prevEnd {
				t.Fatalf("Partition(%d): gap before vertex %d", n, iv.FirstVertex)
			}
			prevEnd = iv.EndVertex
			vertices += iv.EndVertex - iv.FirstVertex
			edges += iv.Edges
		}
		if prevEnd != f.NumVertices || vertices != f.NumVertices || edges != f.NumEdges {
			t.Fatalf("Partition(%d) covers %d vertices / %d edges, want %d / %d",
				n, vertices, edges, f.NumVertices, f.NumEdges)
		}
		// Each interval's cursor must see exactly its vertices.
		for _, iv := range ivs {
			seen := readAll(t, f, iv)
			if int64(len(seen)) != iv.EndVertex-iv.FirstVertex {
				t.Fatalf("interval [%d,%d): cursor saw %d vertices", iv.FirstVertex, iv.EndVertex, len(seen))
			}
		}
	}
}

func TestPartitionByVerticesCoversGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const v = 1200
	g, err := FromEdges(randomEdges(rng, v, 5000), v, false)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(writeTemp(t, g), mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, n := range []int{1, 3, 8} {
		ivs := f.PartitionByVertices(n)
		var vertices, edges int64
		prevEnd := int64(0)
		for _, iv := range ivs {
			if iv.FirstVertex != prevEnd {
				t.Fatalf("PartitionByVertices(%d): gap before %d", n, iv.FirstVertex)
			}
			prevEnd = iv.EndVertex
			vertices += iv.EndVertex - iv.FirstVertex
			edges += iv.Edges
		}
		if prevEnd != f.NumVertices || edges != f.NumEdges {
			t.Fatalf("PartitionByVertices(%d) covers %d vertices / %d edges", n, vertices, edges)
		}
		if n > 1 && len(ivs) > 1 {
			// Vertex counts should be roughly equal (within index stride).
			per := f.NumVertices / int64(n)
			for _, iv := range ivs {
				got := iv.EndVertex - iv.FirstVertex
				if got < per/4 || got > per*4 {
					t.Fatalf("PartitionByVertices(%d): interval of %d vertices, expected ~%d", n, got, per)
				}
			}
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	// A skewed graph: vertex 0 has 5000 edges, the rest few. Partitioning
	// by edges should still bound each interval (beyond the unavoidable
	// single-vertex hot spot) near the average.
	edges := make([]Edge, 0, 6000)
	for i := 0; i < 5000; i++ {
		edges = append(edges, Edge{Src: 0, Dst: VertexID(1 + i%999)})
	}
	for i := 0; i < 1000; i++ {
		edges = append(edges, Edge{Src: VertexID(i), Dst: 0})
	}
	g, err := FromEdges(edges, 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(writeTemp(t, g), mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ivs := f.Partition(4)
	var total int64
	for _, iv := range ivs {
		total += iv.Edges
	}
	if total != f.NumEdges {
		t.Fatalf("edges sum %d, want %d", total, f.NumEdges)
	}
}

// Property: for any random graph, writing then reading through any
// partitioning yields exactly the original adjacency.
func TestFileRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	n := 0
	fn := func(seed int64, vRaw uint8, eRaw uint16, parts uint8) bool {
		n++
		rng := rand.New(rand.NewSource(seed))
		v := int64(vRaw%60) + 1
		g, err := FromEdges(randomEdges(rng, v, int(eRaw%400)), v, false)
		if err != nil {
			return false
		}
		path := filepath.Join(dir, "p"+string(rune('a'+n%26))+".gpsa")
		if err := WriteFile(path, g); err != nil {
			return false
		}
		f, err := OpenFile(path, mmap.ModeAuto)
		if err != nil {
			return false
		}
		defer f.Close()
		got := make(map[int64][]VertexID)
		for _, iv := range f.Partition(int(parts%5) + 1) {
			c := f.Cursor(iv)
			for {
				vid, deg, raw, ok := c.Next()
				if !ok {
					break
				}
				dsts := make([]VertexID, deg)
				for i := range dsts {
					dsts[i], _ = DecodeEdge(raw, i, false)
				}
				got[vid] = dsts
			}
			if c.Err() != nil {
				return false
			}
		}
		for vid := int64(0); vid < v; vid++ {
			want := g.Neighbors(VertexID(vid))
			if len(want) == 0 {
				if len(got[vid]) != 0 {
					return false
				}
				continue
			}
			if !reflect.DeepEqual(got[vid], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
