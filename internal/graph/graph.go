// Package graph provides the graph representations used across all three
// engines in this repository: in-memory edge lists and CSR, and the GPSA
// on-disk CSR format of the paper (Fig. 4) — per-vertex records carrying
// the out-degree, the destination list, and a -1 sentinel — streamed
// sequentially by dispatcher actors through a memory mapping.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. The paper assumes vertices are labeled
// 0..|V|-1; twitter-2010's 41.6 M vertices fit comfortably in 32 bits.
type VertexID = uint32

// Sentinel terminates a vertex's edge list in the on-disk format; it is
// the paper's "-1" separator.
const Sentinel uint32 = 0xFFFFFFFF

// MaxVertices bounds |V| so ids never collide with Sentinel.
const MaxVertices = int64(Sentinel)

// Edge is a directed edge with an optional weight (used by weighted
// algorithms such as SSSP; unweighted algorithms ignore it).
type Edge struct {
	Src    VertexID
	Dst    VertexID
	Weight float32
}

// CSR is an in-memory compressed-sparse-row graph. Indptr has length
// NumVertices+1; the out-neighbors of v are Dst[Indptr[v]:Indptr[v+1]].
// Weights is nil for unweighted graphs, otherwise parallel to Dst.
type CSR struct {
	NumVertices int64
	NumEdges    int64
	Indptr      []int64
	Dst         []VertexID
	Weights     []float32
}

// OutDegree returns the out-degree of v.
func (g *CSR) OutDegree(v VertexID) uint32 {
	return uint32(g.Indptr[v+1] - g.Indptr[v])
}

// Neighbors returns the out-neighbor slice of v. The slice aliases the
// graph and must not be modified.
func (g *CSR) Neighbors(v VertexID) []VertexID {
	return g.Dst[g.Indptr[v]:g.Indptr[v+1]]
}

// EdgeWeights returns the weight slice parallel to Neighbors(v), or nil
// for unweighted graphs.
func (g *CSR) EdgeWeights(v VertexID) []float32 {
	if g.Weights == nil {
		return nil
	}
	return g.Weights[g.Indptr[v]:g.Indptr[v+1]]
}

// Weighted reports whether the graph carries edge weights.
func (g *CSR) Weighted() bool { return g.Weights != nil }

// Validate checks structural invariants: monotone Indptr, edge targets in
// range, and consistent counts. It is used by tests and by loaders after
// reading untrusted files.
func (g *CSR) Validate() error {
	if g.NumVertices < 0 || g.NumVertices > MaxVertices {
		return fmt.Errorf("graph: vertex count %d out of range", g.NumVertices)
	}
	if int64(len(g.Indptr)) != g.NumVertices+1 {
		return fmt.Errorf("graph: indptr length %d, want %d", len(g.Indptr), g.NumVertices+1)
	}
	if len(g.Indptr) > 0 {
		if g.Indptr[0] != 0 {
			return fmt.Errorf("graph: indptr[0] = %d, want 0", g.Indptr[0])
		}
		if last := g.Indptr[g.NumVertices]; last != g.NumEdges {
			return fmt.Errorf("graph: indptr[V] = %d, want edge count %d", last, g.NumEdges)
		}
	}
	for v := int64(0); v < g.NumVertices; v++ {
		if g.Indptr[v+1] < g.Indptr[v] {
			return fmt.Errorf("graph: indptr not monotone at vertex %d", v)
		}
	}
	if int64(len(g.Dst)) != g.NumEdges {
		return fmt.Errorf("graph: dst length %d, want %d", len(g.Dst), g.NumEdges)
	}
	if g.Weights != nil && len(g.Weights) != len(g.Dst) {
		return fmt.Errorf("graph: weights length %d, want %d", len(g.Weights), len(g.Dst))
	}
	for i, d := range g.Dst {
		if int64(d) >= g.NumVertices {
			return fmt.Errorf("graph: edge %d targets vertex %d outside [0, %d)", i, d, g.NumVertices)
		}
	}
	return nil
}

// FromEdges builds a CSR from an edge list using a counting sort on the
// source vertex, O(V+E). numVertices must exceed every vertex id that
// appears; pass 0 to infer it from the edges. Weighted selects whether
// edge weights are retained.
func FromEdges(edges []Edge, numVertices int64, weighted bool) (*CSR, error) {
	if numVertices == 0 {
		for _, e := range edges {
			if int64(e.Src) >= numVertices {
				numVertices = int64(e.Src) + 1
			}
			if int64(e.Dst) >= numVertices {
				numVertices = int64(e.Dst) + 1
			}
		}
	}
	if numVertices > MaxVertices {
		return nil, fmt.Errorf("graph: %d vertices exceed maximum %d", numVertices, MaxVertices)
	}
	g := &CSR{
		NumVertices: numVertices,
		NumEdges:    int64(len(edges)),
		Indptr:      make([]int64, numVertices+1),
		Dst:         make([]VertexID, len(edges)),
	}
	if weighted {
		g.Weights = make([]float32, len(edges))
	}
	for _, e := range edges {
		if int64(e.Src) >= numVertices || int64(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph: edge %d->%d outside vertex range %d", e.Src, e.Dst, numVertices)
		}
		g.Indptr[e.Src+1]++
	}
	for v := int64(0); v < numVertices; v++ {
		g.Indptr[v+1] += g.Indptr[v]
	}
	next := make([]int64, numVertices)
	copy(next, g.Indptr[:numVertices])
	for _, e := range edges {
		i := next[e.Src]
		next[e.Src]++
		g.Dst[i] = e.Dst
		if weighted {
			g.Weights[i] = e.Weight
		}
	}
	return g, nil
}

// SortNeighbors sorts each vertex's adjacency list by destination id,
// giving a canonical form useful for tests and deterministic traversal.
func (g *CSR) SortNeighbors() {
	for v := int64(0); v < g.NumVertices; v++ {
		lo, hi := g.Indptr[v], g.Indptr[v+1]
		if g.Weights == nil {
			dst := g.Dst[lo:hi]
			sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
			continue
		}
		dst, w := g.Dst[lo:hi], g.Weights[lo:hi]
		idx := make([]int, len(dst))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool { return dst[idx[i]] < dst[idx[j]] })
		nd := make([]VertexID, len(dst))
		nw := make([]float32, len(w))
		for i, j := range idx {
			nd[i], nw[i] = dst[j], w[j]
		}
		copy(dst, nd)
		copy(w, nw)
	}
}

// Symmetrize returns the graph with every edge doubled in both
// directions (weights preserved). Weakly-connected-components runs
// propagate labels against edge direction, so the paper's CC workloads
// run on the symmetrized graph.
func (g *CSR) Symmetrize() *CSR {
	edges := make([]Edge, 0, 2*g.NumEdges)
	for v := int64(0); v < g.NumVertices; v++ {
		ws := g.EdgeWeights(VertexID(v))
		for i, d := range g.Neighbors(VertexID(v)) {
			var w float32
			if ws != nil {
				w = ws[i]
			}
			edges = append(edges, Edge{Src: VertexID(v), Dst: d, Weight: w},
				Edge{Src: d, Dst: VertexID(v), Weight: w})
		}
	}
	s, err := FromEdges(edges, g.NumVertices, g.Weights != nil)
	if err != nil {
		// Cannot happen: edges come from a validated graph.
		panic(err)
	}
	return s
}

// Reverse returns the transpose graph (every edge u->v becomes v->u).
// GraphChi-style engines need in-edges as well as out-edges.
func (g *CSR) Reverse() *CSR {
	edges := make([]Edge, 0, g.NumEdges)
	for v := int64(0); v < g.NumVertices; v++ {
		ws := g.EdgeWeights(VertexID(v))
		for i, d := range g.Neighbors(VertexID(v)) {
			e := Edge{Src: d, Dst: VertexID(v)}
			if ws != nil {
				e.Weight = ws[i]
			}
			edges = append(edges, e)
		}
	}
	r, err := FromEdges(edges, g.NumVertices, g.Weights != nil)
	if err != nil {
		// Cannot happen: edges come from a validated graph.
		panic(err)
	}
	return r
}
