package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/diskio"
)

// CompactWriter streams a compact (version 2) CSR file vertex by vertex,
// mirroring Writer's interface so converters can target either format.
// Destinations are sorted per vertex as required by delta encoding.
type CompactWriter struct {
	w        *bufio.Writer
	sink     *csrSink
	path     string
	idxPath  string
	weighted bool

	numVertices int64
	numEdges    int64
	stride      int64

	nextVertex int64
	cumEdges   int64
	byteOff    int64
	index      []IndexEntry

	pairs []edgeSortPair
}

type edgeSortPair struct {
	dst VertexID
	w   float32
}

// NewCompactWriter creates path (and path+".idx" at Finish) in the
// compact format.
func NewCompactWriter(path string, numVertices, numEdges int64, weighted bool) (*CompactWriter, error) {
	if numVertices < 0 || numVertices > MaxVertices {
		return nil, fmt.Errorf("graph: compact writer: vertex count %d out of range", numVertices)
	}
	if numEdges < 0 {
		return nil, fmt.Errorf("graph: compact writer: negative edge count")
	}
	f, err := diskio.Create(path)
	if err != nil {
		return nil, fmt.Errorf("graph: compact writer: %w", err)
	}
	sink := &csrSink{f: f, h: newCSRHash()}
	w := &CompactWriter{
		w:           bufio.NewWriterSize(sink, 1<<20),
		sink:        sink,
		path:        path,
		idxPath:     path + ".idx",
		weighted:    weighted,
		numVertices: numVertices,
		numEdges:    numEdges,
		stride:      indexStride(numVertices),
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersionCompact)
	var flags uint64
	if weighted {
		flags |= flagWeighted
	}
	binary.LittleEndian.PutUint64(hdr[8:], flags)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(numVertices))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(numEdges))
	if _, err := w.w.Write(hdr[:]); err != nil {
		f.Close() //lint:syncerr best-effort cleanup; the primary error is already propagating
		return nil, fmt.Errorf("graph: compact writer header: %w", err)
	}
	return w, nil
}

func (w *CompactWriter) putUvarint(x uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	w.byteOff += int64(n)
	return nil
}

// AppendVertex writes the record for the next vertex; semantics match
// Writer.AppendVertex.
func (w *CompactWriter) AppendVertex(dsts []VertexID, weights []float32) error {
	if w.nextVertex >= w.numVertices {
		return fmt.Errorf("graph: compact writer: vertex %d beyond declared count %d", w.nextVertex, w.numVertices)
	}
	if w.weighted != (weights != nil) {
		return fmt.Errorf("graph: compact writer: weights presence mismatch (file weighted=%v)", w.weighted)
	}
	if weights != nil && len(weights) != len(dsts) {
		return fmt.Errorf("graph: compact writer: %d weights for %d edges", len(weights), len(dsts))
	}
	if w.nextVertex%w.stride == 0 {
		w.index = append(w.index, IndexEntry{FirstVertex: w.nextVertex, WordOff: w.byteOff, CumEdges: w.cumEdges})
	}
	w.pairs = w.pairs[:0]
	for i, d := range dsts {
		if int64(d) >= w.numVertices {
			return fmt.Errorf("graph: compact writer: vertex %d edge targets %d outside [0,%d)", w.nextVertex, d, w.numVertices)
		}
		p := edgeSortPair{dst: d}
		if weights != nil {
			p.w = weights[i]
		}
		w.pairs = append(w.pairs, p)
	}
	sort.Slice(w.pairs, func(i, j int) bool { return w.pairs[i].dst < w.pairs[j].dst })

	if err := w.putUvarint(uint64(len(w.pairs))); err != nil {
		return err
	}
	prev := uint64(0)
	for _, p := range w.pairs {
		if err := w.putUvarint(uint64(p.dst) - prev); err != nil {
			return err
		}
		prev = uint64(p.dst)
	}
	if w.weighted {
		var wb [4]byte
		for _, p := range w.pairs {
			binary.LittleEndian.PutUint32(wb[:], math.Float32bits(p.w))
			if _, err := w.w.Write(wb[:]); err != nil {
				return err
			}
			w.byteOff += 4
		}
	}
	w.nextVertex++
	w.cumEdges += int64(len(w.pairs))
	return nil
}

// Finish flushes and fsyncs the file, writes the sidecar index, and
// seals the ".sum" checksum sidecar.
func (w *CompactWriter) Finish() error {
	if w.nextVertex != w.numVertices {
		w.sink.f.Close() //lint:syncerr error path: the append protocol already failed
		return fmt.Errorf("graph: compact writer: %d vertices appended, declared %d", w.nextVertex, w.numVertices)
	}
	if w.cumEdges != w.numEdges {
		w.sink.f.Close() //lint:syncerr error path: the append protocol already failed
		return fmt.Errorf("graph: compact writer: %d edges appended, declared %d", w.cumEdges, w.numEdges)
	}
	w.index = append(w.index, IndexEntry{FirstVertex: w.numVertices, WordOff: w.byteOff, CumEdges: w.cumEdges})
	if err := w.w.Flush(); err != nil {
		w.sink.f.Close() //lint:syncerr error path: the flush already failed and is being reported
		return fmt.Errorf("graph: compact writer flush: %w", err)
	}
	if err := w.sink.f.Sync(); err != nil {
		w.sink.f.Close() //lint:syncerr error path: the sync already failed and is being reported
		return fmt.Errorf("graph: compact writer sync: %w", err)
	}
	if err := w.sink.f.Close(); err != nil {
		return fmt.Errorf("graph: compact writer close: %w", err)
	}
	if err := writeIndex(w.idxPath, w.stride, w.index); err != nil {
		return err
	}
	return sealCSR(w.path, w.sink.h.Sum64(), w.sink.n)
}
