package graph

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/mmap"
)

func writeCompactTemp(t *testing.T, g *CSR) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g2.gpsa")
	if err := WriteFileCompact(path, g); err != nil {
		t.Fatalf("WriteFileCompact: %v", err)
	}
	return path
}

func TestCompactRoundTrip(t *testing.T) {
	g := paperExample(t)
	f, err := OpenFile(writeCompactTemp(t, g), mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.NumVertices != 4 || f.NumEdges != 6 {
		t.Fatalf("header (%d, %d)", f.NumVertices, f.NumEdges)
	}
	got := readAll(t, f, f.WholeInterval())
	for v := int64(0); v < 4; v++ {
		want := append([]VertexID(nil), g.Neighbors(VertexID(v))...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(want) == 0 && len(got[v]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got[v], want) {
			t.Fatalf("vertex %d: %v, want %v", v, got[v], want)
		}
	}
}

func TestCompactWeightedKeepsWeightWithEdge(t *testing.T) {
	// Weights must follow their destination through the sort.
	g, err := FromEdges([]Edge{
		{Src: 0, Dst: 5, Weight: 5.5}, {Src: 0, Dst: 1, Weight: 1.5}, {Src: 0, Dst: 3, Weight: 3.5},
	}, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(writeCompactTemp(t, g), mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := f.Cursor(f.WholeInterval())
	v, deg, edges, ok := c.Next()
	if !ok || v != 0 || deg != 3 {
		t.Fatalf("first record (%d, %d, %v)", v, deg, ok)
	}
	wantPairs := map[VertexID]float32{1: 1.5, 3: 3.5, 5: 5.5}
	for i := 0; i < 3; i++ {
		d, w := DecodeEdge(edges, i, true)
		if wantPairs[d] != w {
			t.Fatalf("edge to %d has weight %g, want %g", d, w, wantPairs[d])
		}
	}
}

func TestCompactIsSmallerOnClusteredGraphs(t *testing.T) {
	// Adjacent destinations compress well: compact must beat version 1
	// by a wide margin on a locality-heavy graph.
	var edges []Edge
	const n = 2000
	for v := VertexID(0); v < n; v++ {
		for k := VertexID(1); k <= 8; k++ {
			edges = append(edges, Edge{Src: v, Dst: (v + k) % n})
		}
	}
	g, err := FromEdges(edges, n, false)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "v1.gpsa"), filepath.Join(dir, "v2.gpsa")
	if err := WriteFile(p1, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileCompact(p2, g); err != nil {
		t.Fatal(err)
	}
	s1, _ := os.Stat(p1)
	s2, _ := os.Stat(p2)
	if s2.Size()*2 > s1.Size() {
		t.Fatalf("compact %d bytes vs plain %d: expected at least 2x compression", s2.Size(), s1.Size())
	}
}

func TestCompactIndexRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := FromEdges(randomEdges(rng, 500, 3000), 500, false)
	if err != nil {
		t.Fatal(err)
	}
	path := writeCompactTemp(t, g)
	if err := os.Remove(path + ".idx"); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path, mmap.ModeAuto)
	if err != nil {
		t.Fatalf("open without index: %v", err)
	}
	defer f.Close()
	// Partitioned cursors must still cover the graph exactly.
	var edges int64
	for _, iv := range f.Partition(5) {
		c := f.Cursor(iv)
		for {
			_, deg, _, ok := c.Next()
			if !ok {
				break
			}
			edges += int64(deg)
		}
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
	}
	if edges != g.NumEdges {
		t.Fatalf("cursors saw %d edges, want %d", edges, g.NumEdges)
	}
}

func TestCompactRejectsCorruption(t *testing.T) {
	g := paperExample(t)
	path := writeCompactTemp(t, g)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first record's degree varint into a huge value.
	raw[headerBytes] = 0xFF
	raw[headerBytes+1] = 0xFF
	raw[headerBytes+2] = 0xFF
	raw[headerBytes+3] = 0xFF
	raw[headerBytes+4] = 0x7F
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path, mmap.ModeAuto)
	if err != nil {
		return // rejected at open (index validation): fine
	}
	defer f.Close()
	c := f.Cursor(f.WholeInterval())
	for {
		if _, _, _, ok := c.Next(); !ok {
			break
		}
	}
	if c.Err() == nil {
		t.Fatal("corrupt compact file scanned without error")
	}
}

// Property: both formats hold exactly the same adjacency (up to the
// compact format's destination sort), for any random graph.
func TestCompactEquivalenceProperty(t *testing.T) {
	dir := t.TempDir()
	iter := 0
	fn := func(seed int64, vRaw uint8, eRaw uint16, weighted bool) bool {
		iter++
		rng := rand.New(rand.NewSource(seed))
		v := int64(vRaw%80) + 1
		g, err := FromEdges(randomEdges(rng, v, int(eRaw%500)), v, weighted)
		if err != nil {
			return false
		}
		path := filepath.Join(dir, "p.gpsa")
		if err := WriteFileCompact(path, g); err != nil {
			return false
		}
		f, err := OpenFile(path, mmap.ModeAuto)
		if err != nil {
			return false
		}
		defer f.Close()
		c := f.Cursor(f.WholeInterval())
		for {
			vid, deg, raw, ok := c.Next()
			if !ok {
				break
			}
			type pair struct {
				d VertexID
				w float32
			}
			got := make([]pair, deg)
			for i := range got {
				d, w := DecodeEdge(raw, i, weighted)
				got[i] = pair{d, w}
			}
			want := make([]pair, 0, deg)
			ws := g.EdgeWeights(VertexID(vid))
			for i, d := range g.Neighbors(VertexID(vid)) {
				p := pair{d: d}
				if ws != nil {
					p.w = ws[i]
				}
				want = append(want, p)
			}
			sortPairs := func(ps []pair) {
				sort.Slice(ps, func(i, j int) bool {
					if ps[i].d != ps[j].d {
						return ps[i].d < ps[j].d
					}
					return ps[i].w < ps[j].w
				})
			}
			sortPairs(got)
			sortPairs(want)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return c.Err() == nil
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
