package graph

import "math"

// NewMemoryFile builds an in-memory image of g in the version 1 record
// layout, exposing the same File interface the engines consume — cursors,
// balanced partitioning, the lot — without touching disk. Useful for
// library embedding and tests; graphs that do not fit in memory should go
// through WriteFile/OpenFile instead.
func NewMemoryFile(g *CSR) (*File, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	f := &File{
		Path:        "(memory)",
		NumVertices: g.NumVertices,
		NumEdges:    g.NumEdges,
		weighted:    g.Weighted(),
		version:     fileVersion,
		stride:      indexStride(g.NumVertices),
	}
	words := make([]uint32, 0, g.NumVertices*2+g.NumEdges*f.edgeWords())
	var cum int64
	for v := int64(0); v < g.NumVertices; v++ {
		if v%f.stride == 0 {
			f.index = append(f.index, IndexEntry{FirstVertex: v, WordOff: int64(len(words)), CumEdges: cum})
		}
		dsts := g.Neighbors(VertexID(v))
		ws := g.EdgeWeights(VertexID(v))
		words = append(words, uint32(len(dsts)))
		for i, d := range dsts {
			words = append(words, d)
			if f.weighted {
				words = append(words, math.Float32bits(ws[i]))
			}
		}
		words = append(words, Sentinel)
		cum += int64(len(dsts))
	}
	f.index = append(f.index, IndexEntry{FirstVertex: g.NumVertices, WordOff: int64(len(words)), CumEdges: cum})
	f.words = words
	return f, nil
}
