package graph

import (
	"strings"
	"testing"

	"repro/internal/mmap"
)

func TestFileStats(t *testing.T) {
	g, err := FromEdges([]Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 0}, // self-loop
		{Src: 1, Dst: 2},
	}, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(writeTemp(t, g), mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices != 4 || st.NumEdges != 4 {
		t.Fatalf("dims (%d, %d)", st.NumVertices, st.NumEdges)
	}
	if st.MaxOutDegree != 3 || st.MaxOutVertex != 0 {
		t.Fatalf("max degree %d at %d", st.MaxOutDegree, st.MaxOutVertex)
	}
	if st.ZeroOutDegree != 2 { // vertices 2 and 3
		t.Fatalf("zero out-degree = %d, want 2", st.ZeroOutDegree)
	}
	if st.SelfLoops != 1 {
		t.Fatalf("self-loops = %d, want 1", st.SelfLoops)
	}
	if st.AvgOutDegree != 1 {
		t.Fatalf("avg out-degree = %g", st.AvgOutDegree)
	}
	// Histogram: deg 0 ×2, deg 1 ×1, deg 3 ×1 (bucket 2 = 2-3).
	if st.DegreeHist[0] != 2 || st.DegreeHist[1] != 1 || st.DegreeHist[2] != 1 {
		t.Fatalf("histogram = %v", st.DegreeHist)
	}
	out := st.String()
	for _, want := range []string{"vertices:", "self-loops: 1", "2-3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered stats missing %q:\n%s", want, out)
		}
	}
}

func TestDegreeBuckets(t *testing.T) {
	cases := map[uint32]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1 << 20: 21}
	for deg, want := range cases {
		if got := degreeBucket(deg); got != want {
			t.Errorf("degreeBucket(%d) = %d, want %d", deg, got, want)
		}
	}
	if BucketLabel(0) != "0" || BucketLabel(1) != "1" || BucketLabel(3) != "4-7" {
		t.Fatalf("bucket labels wrong: %q %q %q", BucketLabel(0), BucketLabel(1), BucketLabel(3))
	}
}
