package graph

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/mmap"
)

func benchGraphFile(b *testing.B, v int64, e int) *File {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	edges := make([]Edge, e)
	for i := range edges {
		edges[i] = Edge{Src: VertexID(rng.Int63n(v)), Dst: VertexID(rng.Int63n(v))}
	}
	g, err := FromEdges(edges, v, false)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "g.gpsa")
	if err := WriteFile(path, g); err != nil {
		b.Fatal(err)
	}
	f, err := OpenFile(path, mmap.ModeAuto)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return f
}

// BenchmarkCursorScan measures the dispatcher's sequential edge-stream
// rate over the memory-mapped CSR file.
func BenchmarkCursorScan(b *testing.B) {
	f := benchGraphFile(b, 1<<16, 1<<20)
	b.SetBytes(int64(f.NumEdges * 4))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		c := f.Cursor(f.WholeInterval())
		for {
			_, deg, edges, ok := c.Next()
			if !ok {
				break
			}
			for j := 0; j < int(deg); j++ {
				d, _ := DecodeEdge(edges, j, false)
				sink += uint64(d)
			}
		}
		if c.Err() != nil {
			b.Fatal(c.Err())
		}
	}
	_ = sink
}

// BenchmarkFromEdges measures in-memory CSR construction (counting sort).
func BenchmarkFromEdges(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const v, e = 1 << 14, 1 << 18
	edges := make([]Edge, e)
	for i := range edges {
		edges[i] = Edge{Src: VertexID(rng.Int63n(v)), Dst: VertexID(rng.Int63n(v))}
	}
	b.SetBytes(e * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(edges, v, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartition measures interval computation from the sidecar
// index.
func BenchmarkPartition(b *testing.B) {
	f := benchGraphFile(b, 1<<16, 1<<19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ivs := f.Partition(16); len(ivs) == 0 {
			b.Fatal("no intervals")
		}
	}
}

// BenchmarkCursorScanCompact measures the varint-decode streaming rate of
// the compact (version 2) format, for comparison with BenchmarkCursorScan.
func BenchmarkCursorScanCompact(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const v, e = 1 << 16, 1 << 20
	edges := make([]Edge, e)
	for i := range edges {
		edges[i] = Edge{Src: VertexID(rng.Int63n(v)), Dst: VertexID(rng.Int63n(v))}
	}
	g, err := FromEdges(edges, v, false)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "g2.gpsa")
	if err := WriteFileCompact(path, g); err != nil {
		b.Fatal(err)
	}
	f, err := OpenFile(path, mmap.ModeAuto)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	b.SetBytes(int64(f.NumEdges * 4))
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		c := f.Cursor(f.WholeInterval())
		for {
			_, deg, raw, ok := c.Next()
			if !ok {
				break
			}
			for j := 0; j < int(deg); j++ {
				d, _ := DecodeEdge(raw, j, false)
				sink += uint64(d)
			}
		}
		if c.Err() != nil {
			b.Fatal(c.Err())
		}
	}
	_ = sink
}
