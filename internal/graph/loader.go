package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ParseEdgeList reads a text edge list (the SNAP dataset format used for
// the paper's inputs): one "src dst [weight]" pair per line, fields
// separated by spaces or tabs, lines beginning with '#' or '%' ignored.
// Vertex ids must be non-negative integers.
func ParseEdgeList(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: %q: want 'src dst [weight]'", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: bad source %q: %v", line, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: bad destination %q: %v", line, fields[1], err)
		}
		e := Edge{Src: VertexID(src), Dst: VertexID(dst)}
		if len(fields) >= 3 {
			w, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: edge list line %d: bad weight %q: %v", line, fields[2], err)
			}
			e.Weight = float32(w)
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: edge list: %w", err)
	}
	return edges, nil
}

// LoadEdgeListFile reads a text edge-list file.
func LoadEdgeListFile(path string) ([]Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close() //lint:syncerr read-only handle; no durability contract on close
	return ParseEdgeList(f)
}

// ParseAdjacency reads the adjacency format (paper §V-A: "text-based edge
// list or adjacency graph"): each line is "src n dst1 dst2 ... dstn".
func ParseAdjacency(r io.Reader) ([]Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var edges []Edge
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: adjacency line %d: %q: want 'src n dst...'", line, text)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: adjacency line %d: bad source %q: %v", line, fields[0], err)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("graph: adjacency line %d: bad count %q", line, fields[1])
		}
		if len(fields) != 2+n {
			return nil, fmt.Errorf("graph: adjacency line %d: %d destinations listed, %d declared", line, len(fields)-2, n)
		}
		for _, f := range fields[2:] {
			dst, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: adjacency line %d: bad destination %q: %v", line, f, err)
			}
			edges = append(edges, Edge{Src: VertexID(src), Dst: VertexID(dst)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: adjacency: %w", err)
	}
	return edges, nil
}

// WriteEdgeList writes edges in the text format ParseEdgeList accepts.
// Weights are emitted only when weighted is true.
func WriteEdgeList(w io.Writer, edges []Edge, weighted bool) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		var err error
		if weighted {
			_, err = fmt.Fprintf(bw, "%d\t%d\t%g\n", e.Src, e.Dst, e.Weight)
		} else {
			_, err = fmt.Fprintf(bw, "%d\t%d\n", e.Src, e.Dst)
		}
		if err != nil {
			return fmt.Errorf("graph: write edge list: %w", err)
		}
	}
	return bw.Flush()
}

// ToEdges flattens a CSR back into an edge list (mainly for tests and
// format conversion).
func (g *CSR) ToEdges() []Edge {
	edges := make([]Edge, 0, g.NumEdges)
	for v := int64(0); v < g.NumVertices; v++ {
		ws := g.EdgeWeights(VertexID(v))
		for i, d := range g.Neighbors(VertexID(v)) {
			e := Edge{Src: VertexID(v), Dst: d}
			if ws != nil {
				e.Weight = ws[i]
			}
			edges = append(edges, e)
		}
	}
	return edges
}
