package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestParseEdgeList(t *testing.T) {
	in := `# comment line
% another comment

0	2
0 3
1 0 2.5
`
	edges, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 1, Dst: 0, Weight: 2.5}}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []string{
		"justonefield",
		"a b",
		"1 b",
		"1 2 notaweight",
		"-1 2",
	}
	for _, in := range cases {
		if _, err := ParseEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ParseEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestParseAdjacency(t *testing.T) {
	in := `# adjacency
0 2 2 3
1 1 0
2 0
`
	edges, err := ParseAdjacency(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 1, Dst: 0}}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
}

func TestParseAdjacencyErrors(t *testing.T) {
	cases := []string{
		"0",
		"0 2 1",   // declared 2, got 1
		"0 -1",    // negative count
		"0 1 bad", // bad destination
		"bad 1 0", // bad source
		"0 x 1",   // bad count
	}
	for _, in := range cases {
		if _, err := ParseAdjacency(strings.NewReader(in)); err == nil {
			t.Errorf("ParseAdjacency(%q) succeeded, want error", in)
		}
	}
}

func TestWriteEdgeListRoundTrip(t *testing.T) {
	edges := []Edge{{Src: 3, Dst: 1, Weight: 0.5}, {Src: 0, Dst: 2, Weight: 4}}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, edges, true); err != nil {
		t.Fatal(err)
	}
	back, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, edges) {
		t.Fatalf("round trip = %v, want %v", back, edges)
	}

	buf.Reset()
	if err := WriteEdgeList(&buf, edges, false); err != nil {
		t.Fatal(err)
	}
	back, err = ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Weight != 0 {
		t.Fatal("unweighted output retained weights")
	}
}
