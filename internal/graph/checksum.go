package graph

import (
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/diskio"
	"repro/internal/mmap"
)

// The ".sum" sidecar seals a finished CSR file against at-rest bit-rot:
// one text line, "fnv1a64 <16-hex digest> <byte size>\n", covering every
// byte of the data file (header and record region, both formats). The
// writers compute the digest incrementally as bytes stream through, so
// sealing costs no second pass; the scrubber recomputes it with a
// throttled re-read. CSR files are immutable once Finish returns, which
// is what makes a whole-file digest sound — unlike the vertex value
// file, whose per-column digests live in its own sealed header.

// SumPath returns the checksum sidecar path for a CSR file.
func SumPath(path string) string { return path + ".sum" }

func newCSRHash() hash.Hash64 { return fnv.New64a() }

func writeSum(path string, digest uint64, size int64) error {
	line := fmt.Sprintf("fnv1a64 %016x %d\n", digest, size)
	return diskio.WriteFileAtomic(SumPath(path), []byte(line), 0o644)
}

func readSum(path string) (digest uint64, size int64, err error) {
	data, err := diskio.ReadFile(SumPath(path))
	if err != nil {
		return 0, 0, err
	}
	fields := strings.Fields(string(data))
	if len(fields) != 3 || fields[0] != "fnv1a64" {
		return 0, 0, fmt.Errorf("graph: %s: malformed checksum sidecar", SumPath(path))
	}
	if _, err := fmt.Sscanf(fields[1], "%x", &digest); err != nil {
		return 0, 0, fmt.Errorf("graph: %s: bad digest: %w", SumPath(path), err)
	}
	if _, err := fmt.Sscanf(fields[2], "%d", &size); err != nil {
		return 0, 0, fmt.Errorf("graph: %s: bad size: %w", SumPath(path), err)
	}
	return digest, size, nil
}

// hashFileAt streams the file through the digest in chunks, sleeping
// throttle-sized pauses between chunks when pace is non-nil (the
// scrubber's rate limiter hook).
func hashFileAt(path string, pace func(chunk int)) (uint64, int64, error) {
	f, err := diskio.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close() //lint:syncerr read-only digest scan: no writes to lose
	h := newCSRHash()
	buf := make([]byte, 1<<20)
	var total int64
	for {
		n, err := f.Read(buf)
		if n > 0 {
			h.Write(buf[:n])
			total += int64(n)
			if pace != nil {
				pace(n)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
	}
	return h.Sum64(), total, nil
}

// VerifyFile re-verifies the sealed CSR file at path against its ".sum"
// sidecar, or — when no sidecar exists (files written before checksums,
// or whose sidecar was lost) — by a structural walk of every record
// (sentinels, degrees, index terminal). pace, when non-nil, is called
// with each chunk size read so callers can throttle the scan. A
// mismatch returns an error matching diskio.ErrCorrupt; I/O failures
// keep their own typed class.
func VerifyFile(path string, pace func(chunk int)) error {
	digest, size, err := readSum(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return verifyStructural(path)
		}
		return err
	}
	got, n, err := hashFileAt(path, pace)
	if err != nil {
		return err
	}
	if n != size {
		return fmt.Errorf("graph: %s: size %d, sealed %d: %w", path, n, size, diskio.ErrCorrupt)
	}
	if got != digest {
		return fmt.Errorf("graph: %s: digest %016x, sealed %016x: %w", path, got, digest, diskio.ErrCorrupt)
	}
	return nil
}

// verifyStructural walks every record of the file through a cursor,
// catching truncation, missing sentinels, and header/index disagreement
// — weaker than a digest (it cannot see a flipped weight bit) but the
// best available without a sidecar.
func verifyStructural(path string) error {
	f, err := OpenFile(path, mmap.ModeAuto)
	if err != nil {
		return fmt.Errorf("graph: %s: %w: %v", path, diskio.ErrCorrupt, err)
	}
	defer f.Close() //lint:syncerr read-only handle; no durability contract on close
	c := f.Cursor(f.WholeInterval())
	var vertices, edges int64
	for {
		_, deg, _, ok := c.Next()
		if !ok {
			break
		}
		vertices++
		edges += int64(deg)
	}
	if err := c.Err(); err != nil {
		return fmt.Errorf("graph: %s: %w: %v", path, diskio.ErrCorrupt, err)
	}
	if vertices != f.NumVertices || edges != f.NumEdges {
		return fmt.Errorf("graph: %s: walked %d vertices / %d edges, header says %d / %d: %w",
			path, vertices, edges, f.NumVertices, f.NumEdges, diskio.ErrCorrupt)
	}
	return nil
}

// sealCSR syncs a finished data file's directory entry and writes the
// checksum sidecar — the shared tail of both writers' Finish.
func sealCSR(path string, digest uint64, size int64) error {
	if err := writeSum(path, digest, size); err != nil {
		return err
	}
	return diskio.SyncDir(filepath.Dir(path))
}
