package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// paperExample is the graph of paper Fig. 4: vertex 0 -> {2, 3}, and the
// remaining structure implied by the CSR illustration.
func paperExample(t *testing.T) *CSR {
	t.Helper()
	g, err := FromEdges([]Edge{
		{Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 1, Dst: 0},
		{Src: 2, Dst: 1}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 1},
	}, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := paperExample(t)
	if g.NumVertices != 4 || g.NumEdges != 6 {
		t.Fatalf("dims = (%d, %d), want (4, 6)", g.NumVertices, g.NumEdges)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []VertexID{2, 3}) {
		t.Fatalf("Neighbors(0) = %v, want [2 3]", got)
	}
	if g.OutDegree(2) != 2 || g.OutDegree(1) != 1 {
		t.Fatalf("degrees wrong: deg(2)=%d deg(1)=%d", g.OutDegree(2), g.OutDegree(1))
	}
}

func TestFromEdgesInfersVertexCount(t *testing.T) {
	g, err := FromEdges([]Edge{{Src: 9, Dst: 3}}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 10 {
		t.Fatalf("inferred %d vertices, want 10", g.NumVertices)
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges([]Edge{{Src: 5, Dst: 0}}, 3, false); err == nil {
		t.Fatal("edge with src beyond vertex count accepted")
	}
	if _, err := FromEdges([]Edge{{Src: 0, Dst: 5}}, 3, false); err == nil {
		t.Fatal("edge with dst beyond vertex count accepted")
	}
}

func TestFromEdgesEmptyGraph(t *testing.T) {
	g, err := FromEdges(nil, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.OutDegree(4) != 0 {
		t.Fatal("empty graph has edges")
	}
}

func TestWeightsRetained(t *testing.T) {
	g, err := FromEdges([]Edge{{Src: 0, Dst: 1, Weight: 2.5}, {Src: 0, Dst: 2, Weight: 1.5}}, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("graph not weighted")
	}
	ws := g.EdgeWeights(0)
	if len(ws) != 2 || ws[0] != 2.5 || ws[1] != 1.5 {
		t.Fatalf("EdgeWeights(0) = %v", ws)
	}
	if g.EdgeWeights(1) == nil {
		t.Fatal("weighted graph returned nil weights for vertex 1")
	}
}

func TestReverse(t *testing.T) {
	g := paperExample(t)
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	r.SortNeighbors()
	// In-edges of 3 are from 0 and 2.
	if got := r.Neighbors(3); !reflect.DeepEqual(got, []VertexID{0, 2}) {
		t.Fatalf("Reverse Neighbors(3) = %v, want [0 2]", got)
	}
	if r.NumEdges != g.NumEdges {
		t.Fatalf("reverse edge count %d, want %d", r.NumEdges, g.NumEdges)
	}
}

func TestReversePreservesWeights(t *testing.T) {
	g, err := FromEdges([]Edge{{Src: 0, Dst: 1, Weight: 7}}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	r := g.Reverse()
	if ws := r.EdgeWeights(1); len(ws) != 1 || ws[0] != 7 {
		t.Fatalf("reverse weights = %v, want [7]", ws)
	}
}

func TestSortNeighbors(t *testing.T) {
	g, err := FromEdges([]Edge{
		{Src: 0, Dst: 3, Weight: 3}, {Src: 0, Dst: 1, Weight: 1}, {Src: 0, Dst: 2, Weight: 2},
	}, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	g.SortNeighbors()
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []VertexID{1, 2, 3}) {
		t.Fatalf("sorted neighbors = %v", got)
	}
	if ws := g.EdgeWeights(0); !reflect.DeepEqual(ws, []float32{1, 2, 3}) {
		t.Fatalf("weights did not follow sort: %v", ws)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *CSR {
		g, _ := FromEdges([]Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}}, 2, false)
		return g
	}
	g := fresh()
	g.Indptr[0] = 1
	if g.Validate() == nil {
		t.Fatal("nonzero indptr[0] passed validation")
	}
	g = fresh()
	g.Indptr[1] = 5
	if g.Validate() == nil {
		t.Fatal("non-monotone/overflowing indptr passed validation")
	}
	g = fresh()
	g.Dst[0] = 99
	if g.Validate() == nil {
		t.Fatal("out-of-range destination passed validation")
	}
	g = fresh()
	g.NumEdges = 3
	if g.Validate() == nil {
		t.Fatal("inconsistent edge count passed validation")
	}
}

func randomEdges(rng *rand.Rand, v int64, e int) []Edge {
	edges := make([]Edge, e)
	for i := range edges {
		edges[i] = Edge{
			Src:    VertexID(rng.Int63n(v)),
			Dst:    VertexID(rng.Int63n(v)),
			Weight: rng.Float32(),
		}
	}
	return edges
}

// Property: FromEdges then ToEdges preserves the multiset of edges.
func TestCSRRoundTripProperty(t *testing.T) {
	fn := func(seed int64, nRaw uint8, eRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		v := int64(nRaw%50) + 1
		edges := randomEdges(rng, v, int(eRaw%500))
		g, err := FromEdges(edges, v, true)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		back := g.ToEdges()
		if len(back) != len(edges) {
			return false
		}
		count := func(es []Edge) map[Edge]int {
			m := make(map[Edge]int)
			for _, e := range es {
				m[e]++
			}
			return m
		}
		return reflect.DeepEqual(count(edges), count(back))
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Reverse is an involution up to neighbor ordering.
func TestReverseInvolutionProperty(t *testing.T) {
	fn := func(seed int64, nRaw uint8, eRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		v := int64(nRaw%40) + 1
		g, err := FromEdges(randomEdges(rng, v, int(eRaw%300)), v, false)
		if err != nil {
			return false
		}
		rr := g.Reverse().Reverse()
		g.SortNeighbors()
		rr.SortNeighbors()
		return reflect.DeepEqual(g.Indptr, rr.Indptr) && reflect.DeepEqual(g.Dst, rr.Dst)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
