package gen

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestRMATDeterministic(t *testing.T) {
	cfg := RMATConfig{Vertices: 1000, Edges: 5000, Seed: 7}
	a, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 5000 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c, err := RMAT(RMATConfig{Vertices: 1000, Edges: 5000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRMATIdsInRange(t *testing.T) {
	// 1000 is not a power of two: rejection sampling must keep every id
	// below it.
	edges, err := RMAT(RMATConfig{Vertices: 1000, Edges: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if int64(e.Src) >= 1000 || int64(e.Dst) >= 1000 {
			t.Fatalf("edge %v out of range", e)
		}
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// The point of R-MAT: a heavy-tailed out-degree distribution. The top
	// 1% of vertices must own far more than 1% of edges (uniform graphs
	// give ~1%).
	g, err := RMATGraph(RMATConfig{Vertices: 4096, Edges: 65536, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	degs := make([]int, g.NumVertices)
	for v := int64(0); v < g.NumVertices; v++ {
		degs[v] = int(g.OutDegree(graph.VertexID(v)))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	top := 0
	for _, d := range degs[:41] { // top 1%
		top += d
	}
	share := float64(top) / float64(g.NumEdges)
	if share < 0.08 {
		t.Fatalf("top 1%% of vertices own only %.1f%% of edges; distribution not skewed", share*100)
	}
}

func TestRMATWeighted(t *testing.T) {
	edges, err := RMAT(RMATConfig{Vertices: 64, Edges: 500, Seed: 2, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if e.Weight <= 0 || e.Weight > 1 {
			t.Fatalf("weight %g outside (0, 1]", e.Weight)
		}
	}
}

func TestRMATRejectsBadConfig(t *testing.T) {
	if _, err := RMAT(RMATConfig{Vertices: 0, Edges: 10}); err == nil {
		t.Fatal("zero vertices accepted")
	}
	if _, err := RMAT(RMATConfig{Vertices: 10, Edges: 10, A: 0.8, B: 0.2, C: 0.2}); err == nil {
		t.Fatal("probabilities summing above 1 accepted")
	}
	if _, err := RMAT(RMATConfig{Vertices: 10, Edges: 10, A: -0.1, B: 0.5, C: 0.5}); err == nil {
		t.Fatal("negative probability accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	edges, err := ErdosRenyi(100, 1000, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 1000 {
		t.Fatalf("got %d edges", len(edges))
	}
	for _, e := range edges {
		if int64(e.Src) >= 100 || int64(e.Dst) >= 100 {
			t.Fatalf("edge %v out of range", e)
		}
	}
	if _, err := ErdosRenyi(0, 1, 0, false); err == nil {
		t.Fatal("zero vertices accepted")
	}
}

func TestPaperDatasetDimensions(t *testing.T) {
	// Exact Table I numbers.
	want := map[string][2]int64{
		"google":          {875713, 5105039},
		"soc-pokec":       {1632803, 30622564},
		"soc-liveJournal": {4847571, 68993773},
		"twitter-2010":    {41652230, 1468365182},
	}
	if len(PaperDatasets) != 4 {
		t.Fatalf("%d paper datasets, want 4", len(PaperDatasets))
	}
	for _, d := range PaperDatasets {
		w, ok := want[d.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", d.Name)
		}
		if d.Vertices != w[0] || d.Edges != w[1] {
			t.Fatalf("%s = (%d, %d), want (%d, %d)", d.Name, d.Vertices, d.Edges, w[0], w[1])
		}
	}
}

func TestDatasetScaled(t *testing.T) {
	s := Twitter2010.Scaled(64)
	if s.Vertices != 41652230/64 || s.Edges != 1468365182/64 {
		t.Fatalf("scaled = %+v", s)
	}
	if s.Name != "twitter-2010@1/64" {
		t.Fatalf("scaled name = %q", s.Name)
	}
	if g := Google.Scaled(1); g != Google {
		t.Fatal("scale 1 must be identity")
	}
	tiny := Dataset{Name: "t", Vertices: 10, Edges: 5}.Scaled(100)
	if tiny.Vertices < 2 || tiny.Edges < 1 {
		t.Fatalf("over-scaled dataset degenerate: %+v", tiny)
	}
}

func TestFindDataset(t *testing.T) {
	if d, ok := FindDataset("soc-pokec"); !ok || d != SocPokec {
		t.Fatalf("FindDataset(soc-pokec) = %+v, %v", d, ok)
	}
	if _, ok := FindDataset("nope"); ok {
		t.Fatal("FindDataset(nope) succeeded")
	}
}

func TestDatasetGenerateMatchesDims(t *testing.T) {
	d := Google.Scaled(256)
	g, err := d.Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != d.Vertices || g.NumEdges != d.Edges {
		t.Fatalf("generated (%d, %d), want (%d, %d)", g.NumVertices, g.NumEdges, d.Vertices, d.Edges)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: RMAT always produces exactly the requested number of
// in-range edges for any valid configuration.
func TestRMATDimensionsProperty(t *testing.T) {
	fn := func(seed int64, vRaw uint16, eRaw uint16) bool {
		v := int64(vRaw%2000) + 1
		e := int64(eRaw % 2000)
		edges, err := RMAT(RMATConfig{Vertices: v, Edges: e, Seed: seed})
		if err != nil {
			return false
		}
		if int64(len(edges)) != e {
			return false
		}
		for _, ed := range edges {
			if int64(ed.Src) >= v || int64(ed.Dst) >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
