// Package gen produces deterministic synthetic graphs standing in for the
// paper's datasets (Table I: web-Google, soc-Pokec, soc-LiveJournal,
// twitter-2010), which cannot be redistributed here. R-MAT generation
// reproduces the heavy-tailed degree distribution of social and web
// graphs — the property that actually drives the relative performance of
// GPSA, GraphChi and X-Stream — and a scale knob shrinks the giant graphs
// to laptop-friendly sizes while preserving shape (the scale used is
// always reported next to measured numbers).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// RMATConfig parameterizes the recursive-matrix generator of Chakrabarti
// et al. Defaults (zero values) give the standard (0.57, 0.19, 0.19, 0.05)
// social-graph skew.
type RMATConfig struct {
	Vertices int64
	Edges    int64
	A, B, C  float64 // quadrant probabilities; D = 1-A-B-C
	Seed     int64
	Weighted bool // attach uniform random weights in (0, 1]
}

func (c RMATConfig) withDefaults() RMATConfig {
	if c.A == 0 && c.B == 0 && c.C == 0 {
		c.A, c.B, c.C = 0.57, 0.19, 0.19
	}
	return c
}

func (c RMATConfig) validate() error {
	if c.Vertices <= 0 || c.Edges < 0 {
		return fmt.Errorf("gen: rmat: bad dimensions %d vertices, %d edges", c.Vertices, c.Edges)
	}
	if c.Vertices > graph.MaxVertices {
		return fmt.Errorf("gen: rmat: %d vertices exceed maximum", c.Vertices)
	}
	d := 1 - c.A - c.B - c.C
	if c.A < 0 || c.B < 0 || c.C < 0 || d < 0 {
		return fmt.Errorf("gen: rmat: invalid quadrant probabilities (%g, %g, %g)", c.A, c.B, c.C)
	}
	return nil
}

// RMAT generates a directed edge list. Self-loops and duplicate edges are
// kept (real SNAP datasets contain both after id remapping; the engines
// must cope anyway).
func RMAT(cfg RMATConfig) ([]graph.Edge, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	levels := 0
	for int64(1)<<levels < cfg.Vertices {
		levels++
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	edges := make([]graph.Edge, 0, cfg.Edges)
	ab := cfg.A + cfg.B
	abc := ab + cfg.C
	for int64(len(edges)) < cfg.Edges {
		var src, dst int64
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < cfg.A:
				// top-left: no bits set
			case r < ab:
				dst |= 1 << l
			case r < abc:
				src |= 1 << l
			default:
				src |= 1 << l
				dst |= 1 << l
			}
		}
		if src >= cfg.Vertices || dst >= cfg.Vertices {
			continue // rejected: outside the non-power-of-two id space
		}
		e := graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst)}
		if cfg.Weighted {
			e.Weight = float32(1 - rng.Float64()) // (0, 1]
		}
		edges = append(edges, e)
	}
	return edges, nil
}

// RMATGraph generates an R-MAT graph directly in CSR form.
func RMATGraph(cfg RMATConfig) (*graph.CSR, error) {
	edges, err := RMAT(cfg)
	if err != nil {
		return nil, err
	}
	return graph.FromEdges(edges, cfg.Vertices, cfg.Weighted)
}

// ErdosRenyi generates e uniformly random directed edges over v vertices.
// Used as the unskewed contrast to R-MAT in ablation benches.
func ErdosRenyi(v, e, seed int64, weighted bool) ([]graph.Edge, error) {
	if v <= 0 || e < 0 {
		return nil, fmt.Errorf("gen: erdos-renyi: bad dimensions %d vertices, %d edges", v, e)
	}
	if v > graph.MaxVertices {
		return nil, fmt.Errorf("gen: erdos-renyi: %d vertices exceed maximum", v)
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, e)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(rng.Int63n(v)), Dst: graph.VertexID(rng.Int63n(v))}
		if weighted {
			edges[i].Weight = float32(1 - rng.Float64())
		}
	}
	return edges, nil
}
