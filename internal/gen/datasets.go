package gen

import (
	"fmt"

	"repro/internal/graph"
)

// Dataset describes one of the paper's input graphs (Table I).
type Dataset struct {
	Name     string
	Vertices int64
	Edges    int64
}

// The paper's datasets, exact Table I dimensions.
var (
	Google      = Dataset{Name: "google", Vertices: 875713, Edges: 5105039}
	SocPokec    = Dataset{Name: "soc-pokec", Vertices: 1632803, Edges: 30622564}
	LiveJournal = Dataset{Name: "soc-liveJournal", Vertices: 4847571, Edges: 68993773}
	Twitter2010 = Dataset{Name: "twitter-2010", Vertices: 41652230, Edges: 1468365182}
)

// PaperDatasets lists Table I in the paper's order.
var PaperDatasets = []Dataset{Google, SocPokec, LiveJournal, Twitter2010}

// Scaled returns the dataset shrunk by 1/denom in both dimensions (at
// least 2 vertices, 1 edge), renamed to record the scale.
func (d Dataset) Scaled(denom int64) Dataset {
	if denom <= 1 {
		return d
	}
	s := Dataset{
		Name:     fmt.Sprintf("%s@1/%d", d.Name, denom),
		Vertices: d.Vertices / denom,
		Edges:    d.Edges / denom,
	}
	if s.Vertices < 2 {
		s.Vertices = 2
	}
	if s.Edges < 1 {
		s.Edges = 1
	}
	return s
}

// AvgDegree returns edges per vertex.
func (d Dataset) AvgDegree() float64 {
	if d.Vertices == 0 {
		return 0
	}
	return float64(d.Edges) / float64(d.Vertices)
}

// Generate materializes a deterministic R-MAT graph with the dataset's
// dimensions.
func (d Dataset) Generate(seed int64) (*graph.CSR, error) {
	return RMATGraph(RMATConfig{Vertices: d.Vertices, Edges: d.Edges, Seed: seed})
}

// FindDataset looks a dataset up by its Table I name.
func FindDataset(name string) (Dataset, bool) {
	for _, d := range PaperDatasets {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}
