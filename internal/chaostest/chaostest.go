// Package chaostest is GPSA's network-torture harness, the cluster
// sibling of internal/crashtest: it runs real in-process multi-node
// cluster jobs under seeded chaos schedules — node deaths parked
// mid-dispatch and mid-barrier, one-way partitions that heal after a
// jitter window, connection resets, torn and bit-flipped frames — and
// asserts the disturbed run converges to final vertex values
// bit-identical to an undisturbed baseline, with the recovery machinery
// (superstep rollback, node rejoin, frame checksums) provably exercised
// via the cluster.* metrics.
//
// The package holds only the harness plumbing; the torture schedules
// live in its tests. `make chaos` runs the full seeded schedule
// (GPSA_CHAOS=1); the smoke scenario runs with the ordinary test suite.
package chaostest

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Fixture holds the torture graphs and memoizes undisturbed baseline
// runs, so scenarios sharing an algorithm pay for one baseline.
type Fixture struct {
	dir       string
	directed  string
	symmetric string

	mu        sync.Mutex
	baselines map[string][]uint64
}

// NewFixture generates the torture graphs under a fresh temp dir: a
// fixed-seed R-MAT power-law graph for PageRank/BFS and its symmetrized
// twin for CC. Fixed seeds keep every run of the harness on the same
// inputs.
func NewFixture() (*Fixture, error) {
	dir, err := os.MkdirTemp("", "gpsa-chaos-*")
	if err != nil {
		return nil, err
	}
	f := &Fixture{dir: dir, baselines: make(map[string][]uint64)}
	g, err := gen.RMATGraph(gen.RMATConfig{Vertices: 400, Edges: 2600, Seed: 7})
	if err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	f.directed = filepath.Join(dir, "chaos.gpsa")
	if err := graph.WriteFile(f.directed, g); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	f.symmetric = filepath.Join(dir, "chaos-sym.gpsa")
	if err := graph.WriteFile(f.symmetric, g.Symmetrize()); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	return f, nil
}

// Close removes the fixture's graphs.
func (f *Fixture) Close() { os.RemoveAll(f.dir) }

// Graph returns the path of the directed or symmetrized torture graph.
func (f *Fixture) Graph(symmetric bool) string {
	if symmetric {
		return f.symmetric
	}
	return f.directed
}

// Config is the cluster configuration every chaos run uses: 3 nodes, a
// generous rollback-and-retry budget, and timeouts tightened far below
// the production defaults so fault detection — not the fault itself — is
// what the harness spends its wall clock on.
func Config(maxSupersteps int) cluster.Config {
	return cluster.Config{
		Nodes:             3,
		MaxSupersteps:     maxSupersteps,
		StepRetries:       8,
		HeartbeatInterval: 100 * time.Millisecond,
		NodeTimeout:       2 * time.Second,
		PhaseTimeout:      4 * time.Second,
		RecoveryTimeout:   10 * time.Second,
		Node: cluster.NodeConfig{
			BarrierTimeout: 1500 * time.Millisecond,
			RedialBackoff:  2 * time.Millisecond,
		},
	}
}

// Baseline returns the undisturbed final vertex values for prog on the
// chosen graph — the bit-exactness reference every disturbed run is held
// to. The baseline shares the scenario's interval partition (splits) —
// partition geometry is what batch boundaries and fold order hang off —
// but runs with FIXED membership and no chaos: an elastic run is held
// bit-identical to a never-disturbed, never-migrated cluster. Memoized
// per key; must not be called with a fault plan active.
func (f *Fixture) Baseline(key string, prog core.Program, symmetric bool, maxSupersteps, splits int) ([]uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.baselines[key]; ok {
		return v, nil
	}
	if fault.Enabled() {
		return nil, fmt.Errorf("chaostest: baseline %q requested while a fault plan is active", key)
	}
	cfg := Config(maxSupersteps)
	cfg.Splits = splits
	_, values, err := cluster.Run(f.Graph(symmetric), prog, cfg)
	if err != nil {
		return nil, fmt.Errorf("chaostest: undisturbed baseline %q failed: %w", key, err)
	}
	f.baselines[key] = values
	return values, nil
}

// Scenario is one seeded chaos schedule over one algorithm.
type Scenario struct {
	Name          string
	Prog          core.Program
	Baseline      string // baseline memo key (algorithm identity + splits)
	Symmetric     bool
	MaxSupersteps int
	Seed          int64
	Injections    []fault.Injection

	// Splits sets intervals-per-node (cluster.Config.Splits); the
	// undisturbed baseline shares it. Elastic scenarios need >= 2 so
	// migration has sub-node granularity to move.
	Splits int
	// Events schedules joins and drains into the disturbed run; the
	// baseline never sees them.
	Events []cluster.MembershipEvent
	// Redistribute switches the disturbed run to RedistributeDead: a
	// killed node is retired and its intervals salvaged to survivors.
	Redistribute bool
	// Rebalance enables the per-barrier edge-weight balancer.
	Rebalance bool

	// Want* assert the run's recovery and membership counters, so a
	// schedule meant to kill, migrate, join, or drain fails loudly if its
	// faults were absorbed without ever exercising the machinery under
	// test. WantLive, when > 0, pins the final member count.
	WantRejoins         bool
	WantRollbacks       bool
	WantMigrations      bool
	WantRedistributions bool
	WantJoins           bool
	WantDrains          bool
	WantLive            int
}

// ClusterConfig is the disturbed run's configuration: the shared chaos
// Config plus the scenario's elastic-membership knobs.
func (sc Scenario) ClusterConfig() cluster.Config {
	cfg := Config(sc.MaxSupersteps)
	cfg.Splits = sc.Splits
	cfg.Events = sc.Events
	if sc.Redistribute {
		cfg.DeadNodes = cluster.RedistributeDead
	}
	cfg.Rebalance = sc.Rebalance
	return cfg
}

// KillAndPartitionSites are the chaos sites that count toward the
// harness's disturbance quota.
var KillAndPartitionSites = []string{
	fault.SiteNodeKillDispatch,
	fault.SiteNodeKillBarrier,
	fault.SiteConnPartition,
}

// FiredDisturbances sums a plan's firings across the kill and partition
// sites.
func FiredDisturbances(p *fault.Plan) int64 {
	var total int64
	for _, site := range KillAndPartitionSites {
		total += p.Fired(site)
	}
	return total
}
