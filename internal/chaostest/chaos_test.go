package chaostest

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
)

var fx *Fixture

func TestMain(m *testing.M) {
	var err error
	fx, err = NewFixture()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := m.Run()
	fx.Close()
	os.Exit(code)
}

// runScenario executes one seeded chaos schedule and holds the disturbed
// run to the undisturbed baseline, bit for bit. It returns the plan so
// callers can count firings.
func runScenario(t *testing.T, sc Scenario) *fault.Plan {
	t.Helper()
	want, err := fx.Baseline(sc.Baseline, sc.Prog, sc.Symmetric, sc.MaxSupersteps, sc.Splits)
	if err != nil {
		t.Fatal(err)
	}
	rollbacks0 := metrics.Counter(metrics.CtrClusterRollbacks)
	rejoins0 := metrics.Counter(metrics.CtrClusterRejoins)
	migrations0 := metrics.Counter(metrics.CtrClusterMigrations)
	redist0 := metrics.Counter(metrics.CtrClusterRedistributions)
	joins0 := metrics.Counter(metrics.CtrClusterJoins)
	drains0 := metrics.Counter(metrics.CtrClusterDrains)

	plan := fault.NewPlan(sc.Seed, sc.Injections...)
	fault.Activate(plan)
	defer fault.Deactivate()
	res, values, err := cluster.Run(fx.Graph(sc.Symmetric), sc.Prog, sc.ClusterConfig())
	fault.Deactivate()
	if err != nil {
		t.Fatalf("disturbed run failed: %v", err)
	}
	if len(values) != len(want) {
		t.Fatalf("disturbed run returned %d values, baseline %d", len(values), len(want))
	}
	for v := range want {
		if values[v] != want[v] {
			t.Fatalf("vertex %d: %#x, want %#x (not bit-identical to the undisturbed baseline)", v, values[v], want[v])
		}
	}
	for _, in := range sc.Injections {
		if plan.Fired(in.Site) == 0 {
			t.Fatalf("chaos site %s armed but never fired (hits %d); the schedule tested nothing", in.Site, plan.Hits(in.Site))
		}
	}
	assertCounter := func(what string, resCount int64, name string, before int64) {
		t.Helper()
		if resCount == 0 {
			t.Fatalf("scenario expected %s, result reports none", what)
		}
		if got := metrics.Counter(name); got <= before {
			t.Fatalf("%s metric did not advance (%d -> %d)", name, before, got)
		}
	}
	if sc.WantRollbacks {
		assertCounter("superstep rollbacks", res.Rollbacks, metrics.CtrClusterRollbacks, rollbacks0)
	}
	if sc.WantRejoins {
		assertCounter("node rejoins", res.Rejoins, metrics.CtrClusterRejoins, rejoins0)
	}
	if sc.WantMigrations {
		assertCounter("interval migrations", res.Migrations, metrics.CtrClusterMigrations, migrations0)
	}
	if sc.WantRedistributions {
		assertCounter("dead-node redistributions", res.Redistributions, metrics.CtrClusterRedistributions, redist0)
	}
	if sc.WantJoins {
		assertCounter("node joins", res.Joins, metrics.CtrClusterJoins, joins0)
	}
	if sc.WantDrains {
		assertCounter("node drains", res.Drains, metrics.CtrClusterDrains, drains0)
	}
	if sc.WantLive > 0 && res.LiveNodes != sc.WantLive {
		t.Fatalf("run ended with %d live members, want %d", res.LiveNodes, sc.WantLive)
	}
	if len(res.Assignments) == 0 {
		t.Fatal("result carries no interval assignment table")
	}
	return plan
}

// TestChaosSmoke is the always-on slice of the torture schedule: one node
// killed at the compute barrier of a 3-node CC job — after some nodes
// have already committed the superstep, so the retry exercises both
// Rewind (committed survivors) and the rejoin handshake (the
// replacement). Runs with the ordinary test suite; the full schedule is
// `make chaos`.
func TestChaosSmoke(t *testing.T) {
	runScenario(t, Scenario{
		Name:          "smoke-cc-kill-mid-barrier",
		Prog:          algorithms.ConnectedComponents{},
		Baseline:      "cc",
		Symmetric:     true,
		MaxSupersteps: 100,
		Seed:          3,
		Injections:    []fault.Injection{{Site: fault.SiteNodeKillBarrier, After: 2}},
		WantRollbacks: true,
		WantRejoins:   true,
	})
}

// TestChaosMigrationSmoke is the always-on slice of the elastic-
// membership schedule: a 3-node CC job with 4 intervals per node drains
// node 1 at the superstep-2 barrier — every interval it owns live-
// migrates to the survivors mid-job — and the run must still end
// bit-identical to a fixed-membership baseline that never migrated
// anything. Runs with the ordinary test suite and as the `make check`
// chaos slice.
func TestChaosMigrationSmoke(t *testing.T) {
	runScenario(t, Scenario{
		Name:           "smoke-cc-drain-under-load",
		Prog:           algorithms.ConnectedComponents{},
		Baseline:       "cc-s4",
		Symmetric:      true,
		MaxSupersteps:  100,
		Seed:           31,
		Splits:         4,
		Events:         []cluster.MembershipEvent{{Step: 2, Op: cluster.OpDrain, Node: 1}},
		WantMigrations: true,
		WantDrains:     true,
		WantLive:       2,
	})
}

// TestChaosElastic is the always-on elastic-membership schedule: node
// replacement after permanent death, a mid-job join, a drain under load,
// and a node killed in the middle of a migration. Every disturbed run
// must end bit-identical to its undisturbed fixed-membership baseline,
// with the membership machinery provably exercised via the cluster.*
// counters.
func TestChaosElastic(t *testing.T) {
	pagerank := algorithms.PageRank{}
	cc := algorithms.ConnectedComponents{}

	scenarios := []Scenario{
		{
			// A node dies for good mid-dispatch: under RedistributeDead its
			// sealed value file is salvaged and its intervals adopted by the
			// survivors — the cluster finishes the job with 2 members and no
			// rejoin ever happens.
			Name: "cc-replace-after-permanent-death", Prog: cc, Baseline: "cc-s4", Symmetric: true, MaxSupersteps: 100, Seed: 33,
			Splits:        4,
			Redistribute:  true,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillDispatch, After: 17}},
			WantRollbacks: true, WantRedistributions: true, WantLive: 2,
		},
		{
			// A brand-new node joins at the superstep-2 barrier: it boots a
			// fresh value file fast-forwarded to the join epoch and receives
			// intervals via live migration.
			Name: "pagerank-join-mid-job", Prog: pagerank, Baseline: "pagerank-s4", MaxSupersteps: 5, Seed: 34,
			Splits:    4,
			Events:    []cluster.MembershipEvent{{Step: 2, Op: cluster.OpJoin}},
			WantJoins: true, WantMigrations: true, WantLive: 4,
		},
		{
			// Drain under load on the short PageRank job: migrations land
			// between scored supersteps, not after convergence.
			Name: "pagerank-drain-under-load", Prog: pagerank, Baseline: "pagerank-s4", MaxSupersteps: 5, Seed: 35,
			Splits:     4,
			Events:     []cluster.MembershipEvent{{Step: 2, Op: cluster.OpDrain, Node: 2}},
			WantDrains: true, WantMigrations: true, WantLive: 2,
		},
		{
			// The donor is killed handling the very first MIGRATE frame of a
			// drain: the rollback/rejoin machinery replaces it and the drain
			// reruns at the same barrier to completion.
			Name: "cc-kill-mid-migration", Prog: cc, Baseline: "cc-s4", Symmetric: true, MaxSupersteps: 100, Seed: 36,
			Splits:        4,
			Events:        []cluster.MembershipEvent{{Step: 2, Op: cluster.OpDrain, Node: 2}},
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillMigrate, After: 1}},
			WantRollbacks: true, WantRejoins: true, WantMigrations: true, WantDrains: true, WantLive: 2,
		},
		{
			// A migration frame is bit-flipped in transit: the CRC32C check
			// rejects it, the fault is absorbed as a rollback, and the drain
			// still completes bit-exactly.
			Name: "cc-migrate-corrupt-frame", Prog: cc, Baseline: "cc-s4", Symmetric: true, MaxSupersteps: 100, Seed: 37,
			Splits:        4,
			Events:        []cluster.MembershipEvent{{Step: 2, Op: cluster.OpDrain, Node: 1}},
			Injections:    []fault.Injection{{Site: fault.SiteMigrateCorrupt, After: 2}},
			WantRollbacks: true, WantMigrations: true, WantDrains: true, WantLive: 2,
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) { runScenario(t, sc) })
	}
}

// TestChaosTorture is the full seeded network-torture schedule
// (`make chaos`): randomized node kills mid-dispatch and mid-barrier,
// one-way partitions healing after jitter, connection resets, torn and
// bit-flipped frames — across PageRank, BFS, and CC on a 3-node
// in-process cluster. Every disturbed run must end bit-identical to the
// undisturbed baseline, and the schedule as a whole must inject at least
// ten kills and partitions.
func TestChaosTorture(t *testing.T) {
	if os.Getenv("GPSA_CHAOS") == "" {
		t.Skip("full chaos torture is opt-in: set GPSA_CHAOS=1 (make chaos)")
	}
	pagerank := algorithms.PageRank{}
	bfs := algorithms.BFS{Root: 0}
	cc := algorithms.ConnectedComponents{}

	scenarios := []Scenario{
		{
			Name: "cc-kill-mid-dispatch", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 11,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillDispatch, After: 17}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "cc-kill-mid-dispatch-double", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 12,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillDispatch, After: 123, Count: 2}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "pagerank-kill-mid-dispatch", Prog: pagerank, Baseline: "pagerank", MaxSupersteps: 5, Seed: 13,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillDispatch, After: 61}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "pagerank-kill-mid-barrier", Prog: pagerank, Baseline: "pagerank", MaxSupersteps: 5, Seed: 14,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillBarrier, After: 7}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "bfs-kill-mid-barrier", Prog: bfs, Baseline: "bfs", MaxSupersteps: 100, Seed: 15,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillBarrier, After: 4}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "bfs-kill-mid-dispatch-double", Prog: bfs, Baseline: "bfs", MaxSupersteps: 100, Seed: 16,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillDispatch, After: 60, Count: 2}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "cc-oneway-partition", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 17,
			Injections: []fault.Injection{{Site: fault.SiteConnPartition, After: 40, Delay: 150 * time.Millisecond}},
		},
		{
			Name: "pagerank-oneway-partition", Prog: pagerank, Baseline: "pagerank", MaxSupersteps: 5, Seed: 18,
			Injections: []fault.Injection{{Site: fault.SiteConnPartition, After: 25, Delay: 300 * time.Millisecond}},
		},
		{
			Name: "cc-oneway-partition-double", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 19,
			Injections: []fault.Injection{{Site: fault.SiteConnPartition, After: 90, Count: 2, Delay: 450 * time.Millisecond}},
		},
		{
			Name: "cc-conn-reset", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 21,
			Injections: []fault.Injection{{Site: fault.SiteConnReset, After: 25}},
		},
		{
			Name: "cc-torn-frame-short-write", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 22,
			Injections: []fault.Injection{{Site: fault.SiteConnShortWrite, After: 30}},
		},
		{
			Name: "cc-slow-link", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 23,
			Injections: []fault.Injection{{Site: fault.SiteConnDelay, After: 15, Count: 3, Delay: 300 * time.Millisecond}},
		},
		{
			// Elastic churn with the weight balancer on: a join at step 1
			// hands the newcomer intervals, the balancer keeps the spread
			// tight afterwards, and a kill in a later dispatch phase rolls
			// back over the post-migration routing table.
			Name: "cc-join-rebalance-kill", Prog: cc, Baseline: "cc-s4", Symmetric: true, MaxSupersteps: 100, Seed: 24,
			Splits:     4,
			Events:     []cluster.MembershipEvent{{Step: 1, Op: cluster.OpJoin}},
			Rebalance:  true,
			Injections: []fault.Injection{{Site: fault.SiteNodeKillDispatch, After: 200}},
			WantJoins:  true, WantMigrations: true, WantRollbacks: true, WantRejoins: true,
		},
		{
			// A connection reset injected on a membership frame: the drain's
			// MIGRATE exchange dies mid-flight and reruns after recovery.
			Name: "pagerank-migrate-reset", Prog: pagerank, Baseline: "pagerank-s4", MaxSupersteps: 5, Seed: 25,
			Splits:        4,
			Events:        []cluster.MembershipEvent{{Step: 1, Op: cluster.OpDrain, Node: 0}},
			Injections:    []fault.Injection{{Site: fault.SiteMigrateReset, After: 3}},
			WantRollbacks: true, WantMigrations: true, WantDrains: true, WantLive: 2,
		},
		{
			// A torn membership frame: the receiver sees a truncated frame
			// and the checksummed framing refuses it.
			Name: "cc-migrate-short-write", Prog: cc, Baseline: "cc-s4", Symmetric: true, MaxSupersteps: 100, Seed: 26,
			Splits:        4,
			Events:        []cluster.MembershipEvent{{Step: 2, Op: cluster.OpDrain, Node: 1}},
			Injections:    []fault.Injection{{Site: fault.SiteMigrateShortWrite, After: 2}},
			WantRollbacks: true, WantMigrations: true, WantDrains: true, WantLive: 2,
		},
	}

	var disturbances int64
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			plan := runScenario(t, sc)
			disturbances += FiredDisturbances(plan)
		})
	}
	if t.Failed() {
		return
	}
	if disturbances < 10 {
		t.Fatalf("schedule injected %d kills+partitions, want >= 10", disturbances)
	}
	if metrics.Counter(metrics.CtrClusterRollbacks) == 0 || metrics.Counter(metrics.CtrClusterRejoins) == 0 {
		t.Fatalf("torture ended with rollbacks=%d rejoins=%d; the recovery machinery was never exercised",
			metrics.Counter(metrics.CtrClusterRollbacks), metrics.Counter(metrics.CtrClusterRejoins))
	}
}

// TestChaosCorruptFrameDetected bit-flips one frame in transit: the
// CRC32C checksum must reject it (counted by the cluster.checksum_failures
// metric), the recovery path must absorb the loss, and the final values
// must still be bit-identical — corruption is never silently applied.
func TestChaosCorruptFrameDetected(t *testing.T) {
	c0 := metrics.Counter(metrics.CtrClusterChecksumFailures)
	runScenario(t, Scenario{
		Name:          "cc-corrupt-frame",
		Prog:          algorithms.ConnectedComponents{},
		Baseline:      "cc",
		Symmetric:     true,
		MaxSupersteps: 100,
		Seed:          20,
		Injections:    []fault.Injection{{Site: fault.SiteConnCorrupt, After: 33}},
	})
	if got := metrics.Counter(metrics.CtrClusterChecksumFailures); got <= c0 {
		t.Fatalf("cluster.checksum_failures did not advance (%d -> %d): the flipped frame was not caught", c0, got)
	}
}
