package chaostest

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/metrics"
)

var fx *Fixture

func TestMain(m *testing.M) {
	var err error
	fx, err = NewFixture()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := m.Run()
	fx.Close()
	os.Exit(code)
}

// runScenario executes one seeded chaos schedule and holds the disturbed
// run to the undisturbed baseline, bit for bit. It returns the plan so
// callers can count firings.
func runScenario(t *testing.T, sc Scenario) *fault.Plan {
	t.Helper()
	want, err := fx.Baseline(sc.Baseline, sc.Prog, sc.Symmetric, sc.MaxSupersteps)
	if err != nil {
		t.Fatal(err)
	}
	rollbacks0 := metrics.Counter(metrics.CtrClusterRollbacks)
	rejoins0 := metrics.Counter(metrics.CtrClusterRejoins)

	plan := fault.NewPlan(sc.Seed, sc.Injections...)
	fault.Activate(plan)
	defer fault.Deactivate()
	res, values, err := cluster.Run(fx.Graph(sc.Symmetric), sc.Prog, Config(sc.MaxSupersteps))
	fault.Deactivate()
	if err != nil {
		t.Fatalf("disturbed run failed: %v", err)
	}
	if len(values) != len(want) {
		t.Fatalf("disturbed run returned %d values, baseline %d", len(values), len(want))
	}
	for v := range want {
		if values[v] != want[v] {
			t.Fatalf("vertex %d: %#x, want %#x (not bit-identical to the undisturbed baseline)", v, values[v], want[v])
		}
	}
	for _, in := range sc.Injections {
		if plan.Fired(in.Site) == 0 {
			t.Fatalf("chaos site %s armed but never fired (hits %d); the schedule tested nothing", in.Site, plan.Hits(in.Site))
		}
	}
	if sc.WantRollbacks {
		if res.Rollbacks == 0 {
			t.Fatal("scenario expected superstep rollbacks, result reports none")
		}
		if got := metrics.Counter(metrics.CtrClusterRollbacks); got <= rollbacks0 {
			t.Fatalf("cluster.rollbacks metric did not advance (%d -> %d)", rollbacks0, got)
		}
	}
	if sc.WantRejoins {
		if res.Rejoins == 0 {
			t.Fatal("scenario expected node rejoins, result reports none")
		}
		if got := metrics.Counter(metrics.CtrClusterRejoins); got <= rejoins0 {
			t.Fatalf("cluster.rejoins metric did not advance (%d -> %d)", rejoins0, got)
		}
	}
	return plan
}

// TestChaosSmoke is the always-on slice of the torture schedule: one node
// killed at the compute barrier of a 3-node CC job — after some nodes
// have already committed the superstep, so the retry exercises both
// Rewind (committed survivors) and the rejoin handshake (the
// replacement). Runs with the ordinary test suite; the full schedule is
// `make chaos`.
func TestChaosSmoke(t *testing.T) {
	runScenario(t, Scenario{
		Name:          "smoke-cc-kill-mid-barrier",
		Prog:          algorithms.ConnectedComponents{},
		Baseline:      "cc",
		Symmetric:     true,
		MaxSupersteps: 100,
		Seed:          3,
		Injections:    []fault.Injection{{Site: fault.SiteNodeKillBarrier, After: 2}},
		WantRollbacks: true,
		WantRejoins:   true,
	})
}

// TestChaosTorture is the full seeded network-torture schedule
// (`make chaos`): randomized node kills mid-dispatch and mid-barrier,
// one-way partitions healing after jitter, connection resets, torn and
// bit-flipped frames — across PageRank, BFS, and CC on a 3-node
// in-process cluster. Every disturbed run must end bit-identical to the
// undisturbed baseline, and the schedule as a whole must inject at least
// ten kills and partitions.
func TestChaosTorture(t *testing.T) {
	if os.Getenv("GPSA_CHAOS") == "" {
		t.Skip("full chaos torture is opt-in: set GPSA_CHAOS=1 (make chaos)")
	}
	pagerank := algorithms.PageRank{}
	bfs := algorithms.BFS{Root: 0}
	cc := algorithms.ConnectedComponents{}

	scenarios := []Scenario{
		{
			Name: "cc-kill-mid-dispatch", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 11,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillDispatch, After: 17}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "cc-kill-mid-dispatch-double", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 12,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillDispatch, After: 123, Count: 2}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "pagerank-kill-mid-dispatch", Prog: pagerank, Baseline: "pagerank", MaxSupersteps: 5, Seed: 13,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillDispatch, After: 61}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "pagerank-kill-mid-barrier", Prog: pagerank, Baseline: "pagerank", MaxSupersteps: 5, Seed: 14,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillBarrier, After: 7}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "bfs-kill-mid-barrier", Prog: bfs, Baseline: "bfs", MaxSupersteps: 100, Seed: 15,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillBarrier, After: 4}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "bfs-kill-mid-dispatch-double", Prog: bfs, Baseline: "bfs", MaxSupersteps: 100, Seed: 16,
			Injections:    []fault.Injection{{Site: fault.SiteNodeKillDispatch, After: 60, Count: 2}},
			WantRollbacks: true, WantRejoins: true,
		},
		{
			Name: "cc-oneway-partition", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 17,
			Injections: []fault.Injection{{Site: fault.SiteConnPartition, After: 40, Delay: 150 * time.Millisecond}},
		},
		{
			Name: "pagerank-oneway-partition", Prog: pagerank, Baseline: "pagerank", MaxSupersteps: 5, Seed: 18,
			Injections: []fault.Injection{{Site: fault.SiteConnPartition, After: 25, Delay: 300 * time.Millisecond}},
		},
		{
			Name: "cc-oneway-partition-double", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 19,
			Injections: []fault.Injection{{Site: fault.SiteConnPartition, After: 90, Count: 2, Delay: 450 * time.Millisecond}},
		},
		{
			Name: "cc-conn-reset", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 21,
			Injections: []fault.Injection{{Site: fault.SiteConnReset, After: 25}},
		},
		{
			Name: "cc-torn-frame-short-write", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 22,
			Injections: []fault.Injection{{Site: fault.SiteConnShortWrite, After: 30}},
		},
		{
			Name: "cc-slow-link", Prog: cc, Baseline: "cc", Symmetric: true, MaxSupersteps: 100, Seed: 23,
			Injections: []fault.Injection{{Site: fault.SiteConnDelay, After: 15, Count: 3, Delay: 300 * time.Millisecond}},
		},
	}

	var disturbances int64
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			plan := runScenario(t, sc)
			disturbances += FiredDisturbances(plan)
		})
	}
	if t.Failed() {
		return
	}
	if disturbances < 10 {
		t.Fatalf("schedule injected %d kills+partitions, want >= 10", disturbances)
	}
	if metrics.Counter(metrics.CtrClusterRollbacks) == 0 || metrics.Counter(metrics.CtrClusterRejoins) == 0 {
		t.Fatalf("torture ended with rollbacks=%d rejoins=%d; the recovery machinery was never exercised",
			metrics.Counter(metrics.CtrClusterRollbacks), metrics.Counter(metrics.CtrClusterRejoins))
	}
}

// TestChaosCorruptFrameDetected bit-flips one frame in transit: the
// CRC32C checksum must reject it (counted by the cluster.checksum_failures
// metric), the recovery path must absorb the loss, and the final values
// must still be bit-identical — corruption is never silently applied.
func TestChaosCorruptFrameDetected(t *testing.T) {
	c0 := metrics.Counter(metrics.CtrClusterChecksumFailures)
	runScenario(t, Scenario{
		Name:          "cc-corrupt-frame",
		Prog:          algorithms.ConnectedComponents{},
		Baseline:      "cc",
		Symmetric:     true,
		MaxSupersteps: 100,
		Seed:          20,
		Injections:    []fault.Injection{{Site: fault.SiteConnCorrupt, After: 33}},
	})
	if got := metrics.Counter(metrics.CtrClusterChecksumFailures); got <= c0 {
		t.Fatalf("cluster.checksum_failures did not advance (%d -> %d): the flipped frame was not caught", c0, got)
	}
}
