// Package scrub is the background scrub/repair actor: it re-verifies
// sealed storage artifacts — vertex value files (column digests) and
// CSR graph files (".sum" sidecars) — at a throttled rate, quarantines
// anything whose bytes no longer match their seal, and repairs what a
// live replica can rebuild.
//
// The threat it exists for is at-rest corruption: bit-rot that flips a
// sealed byte long after every fsync succeeded. The crash protocol
// cannot see it (nothing crashed) and the read path only catches it on
// the next Open — which may be weeks later, after the last healthy
// replica is gone. Scrubbing trades a bounded trickle of read
// bandwidth for a bounded detection latency.
//
// Outcomes per artifact, in order of preference:
//
//  1. Healthy: the seal matches (disk.scrubs counts it).
//  2. Corrupt with a repair source: the artifact is renamed to
//     *.quarantine (disk.quarantines), rebuilt — value files by
//     interval re-fetch from live cluster owners, see
//     cluster.RepairValuesFile — and re-verified (disk.repairs).
//  3. Corrupt with no replica: quarantined and flagged
//     recompute-from-seed; the finding carries cluster.ErrNoReplica's
//     text so operators know re-running the job is the only remedy.
//  4. Unreadable (EIO): reported as an I/O finding; the file is NOT
//     quarantined — a failing disk is not evidence against the data.
//
// Value files that record an in-progress or torn superstep are
// skipped: they are crash recovery's province, and their bytes carry
// no completed seal to falsify.
package scrub

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/diskio"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/vertexfile"
)

// Kind of artifact a Target points at.
const (
	KindValues = "values"
	KindGraph  = "graph"
)

// Target is one sealed artifact under scrub.
type Target struct {
	Path string
	Kind string // KindValues or KindGraph
	// Repair, when non-nil, rebuilds Path after the corrupt original
	// has been quarantined (e.g. cluster.RepairValuesFile bound to the
	// live owners). nil means no replica exists: the finding is flagged
	// recompute-from-seed.
	Repair func() error
}

// Finding records one unhealthy artifact from a pass.
type Finding struct {
	Path        string `json:"path"`
	Kind        string `json:"kind"`
	Error       string `json:"error"`
	Quarantined string `json:"quarantined,omitempty"` // where the corrupt bytes went
	Repaired    bool   `json:"repaired"`
	// Action is the operator guidance: "repaired", "recompute-from-seed",
	// or "io-error".
	Action string `json:"action"`
}

// Report summarizes one scrub pass; the harnesses upload it as a CI
// artifact.
type Report struct {
	Start    time.Time `json:"start"`
	Duration string    `json:"duration"`
	Scrubbed int       `json:"scrubbed"` // artifacts verified healthy or repaired
	Skipped  int       `json:"skipped"`  // value files mid-superstep or torn
	Findings []Finding `json:"findings,omitempty"`
}

// Clean reports whether the pass found every artifact healthy.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

// Options configures a Scrubber.
type Options struct {
	// Interval between background passes; <= 0 disables the background
	// actor (RunOnce still works).
	Interval time.Duration
	// ThrottleBytesPerSec caps the scrub read rate so a pass never
	// competes with the engine for disk bandwidth; <= 0 is unthrottled.
	ThrottleBytesPerSec int64
	// ReportDir, when set, receives one scrub-<unixnano>.json report per
	// pass that had findings (atomic writes).
	ReportDir string
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// OnPass, when non-nil, observes every completed pass (testing and
	// metrics endpoints).
	OnPass func(Report)
}

// Scrubber owns a target set and scrubs it, either on demand (RunOnce)
// or as a background actor (Start/Stop). Targets may be added and
// removed while the actor runs; a pass snapshots the set.
type Scrubber struct {
	opts Options

	mu      sync.Mutex
	targets map[string]Target

	stop chan struct{}
	done chan struct{}
}

// New builds a Scrubber with no targets.
func New(opts Options) *Scrubber {
	return &Scrubber{opts: opts, targets: make(map[string]Target)}
}

// Add registers (or replaces) a target by path.
func (s *Scrubber) Add(t Target) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.targets[t.Path] = t
}

// Remove drops a target by path.
func (s *Scrubber) Remove(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.targets, path)
}

func (s *Scrubber) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// pace returns the throttle callback for chunked reads, or nil.
func (s *Scrubber) pace() func(int) {
	rate := s.opts.ThrottleBytesPerSec
	if rate <= 0 {
		return nil
	}
	return func(chunk int) {
		time.Sleep(time.Duration(int64(chunk) * int64(time.Second) / rate))
	}
}

// RunOnce scrubs every registered target and returns the pass report.
func (s *Scrubber) RunOnce() Report {
	s.mu.Lock()
	targets := make([]Target, 0, len(s.targets))
	for _, t := range s.targets {
		targets = append(targets, t)
	}
	s.mu.Unlock()

	rep := Report{Start: time.Now()}
	for _, t := range targets {
		s.scrubOne(t, &rep)
	}
	rep.Duration = time.Since(rep.Start).String()
	if s.opts.ReportDir != "" && !rep.Clean() {
		if err := WriteReport(s.opts.ReportDir, &rep); err != nil {
			s.logf("scrub: writing report: %v", err)
		}
	}
	if s.opts.OnPass != nil {
		s.opts.OnPass(rep)
	}
	return rep
}

func (s *Scrubber) scrubOne(t Target, rep *Report) {
	err := s.verify(t)
	if err == nil {
		rep.Scrubbed++
		metrics.Inc(metrics.CtrDiskScrubs)
		return
	}
	if errors.Is(err, errSkip) {
		rep.Skipped++
		return
	}
	if !errors.Is(err, diskio.ErrCorrupt) {
		// The read failed, not the data: an EIO here means the disk is
		// the problem, and quarantining the artifact would throw away
		// bytes that may be perfectly fine once the device recovers.
		s.logf("scrub: %s: read failed: %v", t.Path, err)
		rep.Findings = append(rep.Findings, Finding{Path: t.Path, Kind: t.Kind, Error: err.Error(), Action: "io-error"})
		return
	}

	f := Finding{Path: t.Path, Kind: t.Kind, Error: err.Error(), Action: "recompute-from-seed"}
	q, qerr := Quarantine(t.Path)
	if qerr != nil {
		s.logf("scrub: %s: quarantine failed: %v", t.Path, qerr)
		f.Error = fmt.Sprintf("%v (quarantine failed: %v)", err, qerr)
		rep.Findings = append(rep.Findings, f)
		return
	}
	f.Quarantined = q
	s.logf("scrub: %s: corrupt, quarantined to %s", t.Path, q)

	if t.Repair != nil {
		if rerr := t.Repair(); rerr != nil {
			f.Error = fmt.Sprintf("%v (repair failed: %v)", err, rerr)
			s.logf("scrub: %s: repair failed: %v", t.Path, rerr)
		} else if verr := s.verify(t); verr != nil {
			f.Error = fmt.Sprintf("%v (repaired copy failed re-verification: %v)", err, verr)
			s.logf("scrub: %s: repaired copy failed re-verification: %v", t.Path, verr)
		} else {
			f.Repaired = true
			f.Action = "repaired"
			rep.Scrubbed++
			metrics.Inc(metrics.CtrDiskScrubs)
			metrics.Inc(metrics.CtrDiskRepairs)
			s.logf("scrub: %s: repaired from live replica", t.Path)
		}
	}
	rep.Findings = append(rep.Findings, f)
}

// errSkip marks value files awaiting crash recovery, not scrub.
var errSkip = errors.New("scrub: artifact mid-superstep; crash recovery's province")

func (s *Scrubber) verify(t Target) error {
	switch t.Kind {
	case KindValues:
		state, err := vertexfile.VerifyState(t.Path)
		if err != nil {
			return err
		}
		if state != "sealed" {
			return errSkip
		}
		if pace := s.pace(); pace != nil {
			if st, err := os.Stat(t.Path); err == nil {
				pace(int(st.Size()))
			}
		}
		return nil
	case KindGraph:
		return graph.VerifyFile(t.Path, s.pace())
	default:
		return fmt.Errorf("scrub: %s: unknown target kind %q", t.Path, t.Kind)
	}
}

// Start launches the background actor: one pass every Interval until
// Stop. A zero or negative interval makes Start a no-op.
func (s *Scrubber) Start() {
	if s.opts.Interval <= 0 || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.opts.Interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-tick.C:
				s.RunOnce()
			}
		}
	}()
}

// Stop halts the background actor and waits for an in-flight pass.
func (s *Scrubber) Stop() {
	if s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop, s.done = nil, nil
}

// Quarantine renames path aside to a non-colliding "<path>.quarantine"
// (or ".quarantine.N") and syncs the directory, so the corrupt bytes
// can never again be opened as healthy state but remain available for
// forensics. Returns the quarantine path.
func Quarantine(path string) (string, error) {
	dst := path + ".quarantine"
	for n := 1; ; n++ {
		if _, err := os.Stat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = fmt.Sprintf("%s.quarantine.%d", path, n)
	}
	if err := os.Rename(path, dst); err != nil {
		return "", err
	}
	if err := diskio.SyncDir(filepath.Dir(path)); err != nil {
		return dst, err
	}
	metrics.Inc(metrics.CtrDiskQuarantines)
	return dst, nil
}

// WriteReport writes rep as an indented JSON artifact into dir
// (created if absent), named scrub-<start-unixnano>.json.
func WriteReport(dir string, rep *Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("scrub-%d.json", rep.Start.UnixNano())
	return diskio.WriteFileAtomic(filepath.Join(dir, name), append(data, '\n'), 0o644)
}
