package scrub

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/diskio"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/vertexfile"
)

func mkValues(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	vf, err := vertexfile.Create(path, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func mkGraph(t *testing.T, dir, name string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	w, err := graph.NewWriter(path, 4, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	edges := [][]graph.VertexID{{1, 2}, {3}, {}, {}}
	for _, dsts := range edges {
		if err := w.AppendVertex(dsts, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestScrubHealthyPass(t *testing.T) {
	metrics.ResetCounters()
	dir := t.TempDir()
	s := New(Options{})
	s.Add(Target{Path: mkValues(t, dir, "v.gpvf"), Kind: KindValues})
	s.Add(Target{Path: mkGraph(t, dir, "g.csr"), Kind: KindGraph})
	rep := s.RunOnce()
	if !rep.Clean() || rep.Scrubbed != 2 {
		t.Fatalf("healthy pass: %+v", rep)
	}
	if metrics.Counter(metrics.CtrDiskScrubs) != 2 {
		t.Fatalf("disk.scrubs = %d, want 2", metrics.Counter(metrics.CtrDiskScrubs))
	}
}

func TestScrubDetectsGraphRotAndQuarantines(t *testing.T) {
	metrics.ResetCounters()
	dir := t.TempDir()
	gp := mkGraph(t, dir, "g.csr")
	st, _ := os.Stat(gp)
	if err := diskio.Rot(gp, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	s := New(Options{ReportDir: filepath.Join(dir, "reports")})
	s.Add(Target{Path: gp, Kind: KindGraph})
	rep := s.RunOnce()
	if rep.Clean() || len(rep.Findings) != 1 {
		t.Fatalf("rot not found: %+v", rep)
	}
	f := rep.Findings[0]
	if f.Action != "recompute-from-seed" || f.Quarantined == "" || f.Repaired {
		t.Fatalf("finding: %+v", f)
	}
	if _, err := os.Stat(gp); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still present at %s", gp)
	}
	if _, err := os.Stat(f.Quarantined); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if metrics.Counter(metrics.CtrDiskQuarantines) != 1 {
		t.Fatalf("disk.quarantines = %d", metrics.Counter(metrics.CtrDiskQuarantines))
	}
	ents, err := os.ReadDir(filepath.Join(dir, "reports"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("report artifact not written: %v %v", ents, err)
	}
}

func TestScrubRepairsValuesRot(t *testing.T) {
	metrics.ResetCounters()
	dir := t.TempDir()
	vp := mkValues(t, dir, "v.gpvf")
	// Plant rot in a dispatch-column payload (slot layout: 128-byte
	// header, 8-byte bitmap for 64 vertices, then interleaved slots;
	// vertex 10 column 0 sits at 136+8*20) so the sealed column digest
	// — not the header checksum — catches it.
	if err := diskio.Rot(vp, 136+8*20); err != nil {
		t.Fatal(err)
	}
	s := New(Options{})
	s.Add(Target{
		Path: vp,
		Kind: KindValues,
		Repair: func() error {
			vf, err := vertexfile.Create(vp, 64, nil)
			if err != nil {
				return err
			}
			return vf.Close()
		},
	})
	rep := s.RunOnce()
	if len(rep.Findings) != 1 {
		t.Fatalf("findings: %+v", rep)
	}
	f := rep.Findings[0]
	if !f.Repaired || f.Action != "repaired" {
		t.Fatalf("finding: %+v", f)
	}
	if err := vertexfile.Verify(vp); err != nil {
		t.Fatalf("repaired file not healthy: %v", err)
	}
	if metrics.Counter(metrics.CtrDiskRepairs) != 1 || metrics.Counter(metrics.CtrDiskQuarantines) != 1 {
		t.Fatalf("repair metrics: repairs=%d quarantines=%d",
			metrics.Counter(metrics.CtrDiskRepairs), metrics.Counter(metrics.CtrDiskQuarantines))
	}
}

func TestScrubSkipsRunningValues(t *testing.T) {
	dir := t.TempDir()
	vp := filepath.Join(dir, "v.gpvf")
	vf, err := vertexfile.Create(vp, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vf.Begin(0, true); err != nil {
		t.Fatal(err)
	}
	defer vf.Close()
	s := New(Options{})
	s.Add(Target{Path: vp, Kind: KindValues})
	rep := s.RunOnce()
	if rep.Skipped != 1 || !rep.Clean() {
		t.Fatalf("running file not skipped: %+v", rep)
	}
}
