//go:build linux

package mmap

import (
	"fmt"
	"syscall"
)

// Advise hints the kernel about the mapping's access pattern via
// madvise(2). GPSA uses AccessSequential for the CSR edge file its
// dispatchers stream and AccessRandom for the vertex value file its
// computing workers probe.
func (m *Map) Advise(pattern Access) error {
	if m.heap || len(m.data) == 0 {
		return nil // heap-backed: nothing to advise
	}
	var advice int
	switch pattern {
	case AccessSequential:
		advice = syscall.MADV_SEQUENTIAL
	case AccessRandom:
		advice = syscall.MADV_RANDOM
	case AccessWillNeed:
		advice = syscall.MADV_WILLNEED
	case AccessNormal:
		advice = syscall.MADV_NORMAL
	default:
		return fmt.Errorf("mmap: unknown access pattern %d", pattern)
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MADVISE,
		uintptr(addrOf(m.data)), uintptr(len(m.data)), uintptr(advice))
	if errno != 0 {
		return fmt.Errorf("mmap: madvise: %w", errno)
	}
	return nil
}
