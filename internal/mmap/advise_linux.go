//go:build linux

package mmap

import (
	"fmt"
	"os"
	"syscall"
)

func adviceFor(pattern Access) (int, error) {
	switch pattern {
	case AccessSequential:
		return syscall.MADV_SEQUENTIAL, nil
	case AccessRandom:
		return syscall.MADV_RANDOM, nil
	case AccessWillNeed:
		return syscall.MADV_WILLNEED, nil
	case AccessDontNeed:
		return syscall.MADV_DONTNEED, nil
	case AccessNormal:
		return syscall.MADV_NORMAL, nil
	}
	return 0, fmt.Errorf("mmap: unknown access pattern %d", pattern)
}

// Advise hints the kernel about the mapping's access pattern via
// madvise(2). GPSA uses AccessSequential for the CSR edge file its
// dispatchers stream and AccessRandom for the vertex value file its
// computing workers probe.
func (m *Map) Advise(pattern Access) error {
	if m.heap || len(m.data) == 0 {
		return nil // heap-backed: nothing to advise
	}
	advice, err := adviceFor(pattern)
	if err != nil {
		return err
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MADVISE,
		uintptr(addrOf(m.data)), uintptr(len(m.data)), uintptr(advice))
	if errno != 0 {
		return fmt.Errorf("mmap: madvise: %w", errno)
	}
	return nil
}

// AdviseRange re-advises only the byte range [off, off+n) of the
// mapping — the primitive behind async prefetch, where a walker issues
// AccessWillNeed ahead of the streaming cursor and AccessDontNeed
// behind it. madvise demands a page-aligned address, so the range is
// widened down to the containing page boundary (advising more than
// asked is safe: WILLNEED over-reads a page, DONTNEED drops a page the
// cursor already consumed). Heap-backed maps are fully resident and
// return nil.
func (m *Map) AdviseRange(off, n int64, pattern Access) error {
	if off < 0 || n < 0 || off+n > int64(len(m.data)) {
		return fmt.Errorf("mmap: advise range [%d, +%d) out of range (len %d)", off, n, len(m.data))
	}
	if m.heap || n == 0 {
		return nil
	}
	advice, err := adviceFor(pattern)
	if err != nil {
		return err
	}
	page := int64(os.Getpagesize())
	start := off &^ (page - 1)
	length := off + n - start
	_, _, errno := syscall.Syscall(syscall.SYS_MADVISE,
		addrOf(m.data)+uintptr(start), uintptr(length), uintptr(advice))
	if errno != 0 {
		return fmt.Errorf("mmap: madvise [%d, +%d): %w", start, length, errno)
	}
	return nil
}
