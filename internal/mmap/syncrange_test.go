package mmap

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSyncRangeHeapWritesOnlyRange: on a heap map, SyncRange must write
// back exactly the requested range — that selectivity is what the vertex
// file's write-ordering (columns before header) is built on.
func TestSyncRangeHeapWritesOnlyRange(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	m, err := Create(path, 4096, Options{Mode: ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	b := m.Bytes()
	b[0] = 0xAA   // header-ish region: NOT synced
	b[100] = 0xBB // column-ish region: synced
	if err := m.SyncRange(100, 1); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[100] != 0xBB {
		t.Fatalf("synced byte not written back: %#x", raw[100])
	}
	if raw[0] != 0 {
		t.Fatalf("unsynced byte leaked to disk: %#x", raw[0])
	}
}

// TestSyncRangeOS smoke-tests ranged msync on a real mapping, including
// ranges that are not page-aligned.
func TestSyncRangeOS(t *testing.T) {
	if !osMapSupported {
		t.Skip("no OS mmap on this platform")
	}
	path := filepath.Join(t.TempDir(), "f")
	m, err := Create(path, 3*int64(os.Getpagesize())+17, Options{Mode: ModeOS})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	b := m.Bytes()
	for _, off := range []int64{0, 1, int64(os.Getpagesize()) - 1, int64(len(b)) - 17} {
		b[off] = 0xCD
		if err := m.SyncRange(off, 17); err != nil {
			t.Fatalf("SyncRange(%d, 17): %v", off, err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[1] != 0xCD || raw[len(raw)-17] != 0xCD {
		t.Fatal("ranged msync did not reach the file")
	}
}

func TestSyncRangeValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	m, err := Create(path, 64, Options{Mode: ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for _, c := range []struct{ off, n int64 }{{-1, 4}, {0, -1}, {60, 8}, {65, 0}} {
		if err := m.SyncRange(c.off, c.n); err == nil {
			t.Errorf("SyncRange(%d, %d) accepted", c.off, c.n)
		}
	}
	if err := m.SyncRange(64, 0); err != nil {
		t.Errorf("empty range at end rejected: %v", err)
	}

	ro, err := Open(path, Options{Mode: ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ro.SyncRange(0, 8); err == nil {
		t.Error("SyncRange on read-only map accepted")
	}
}
