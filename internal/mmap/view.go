package mmap

import (
	"fmt"
	"unsafe"
)

// addrOf returns the address of the first byte of b. b must be non-empty.
func addrOf(b []byte) uintptr {
	return uintptr(unsafe.Pointer(&b[0]))
}

// Uint64s reinterprets region [off, off+8*n) of the mapping as a []uint64.
// The mapping must outlive the returned slice. Offsets must be 8-byte
// aligned relative to the start of the mapping (which mmap page-aligns, so
// absolute alignment holds too).
func (m *Map) Uint64s(off, n int64) ([]uint64, error) {
	if off < 0 || n < 0 || off+8*n > int64(len(m.data)) {
		return nil, fmt.Errorf("mmap: uint64 view [%d, +%d words) out of range (len %d)", off, n, len(m.data))
	}
	if off%8 != 0 {
		return nil, fmt.Errorf("mmap: uint64 view offset %d not 8-byte aligned", off)
	}
	if n == 0 {
		return nil, nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&m.data[off])), n), nil
}

// Uint32s reinterprets region [off, off+4*n) of the mapping as a []uint32.
func (m *Map) Uint32s(off, n int64) ([]uint32, error) {
	if off < 0 || n < 0 || off+4*n > int64(len(m.data)) {
		return nil, fmt.Errorf("mmap: uint32 view [%d, +%d words) out of range (len %d)", off, n, len(m.data))
	}
	if off%4 != 0 {
		return nil, fmt.Errorf("mmap: uint32 view offset %d not 4-byte aligned", off)
	}
	if n == 0 {
		return nil, nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&m.data[off])), n), nil
}
