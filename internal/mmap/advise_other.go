//go:build !linux

package mmap

import "fmt"

// Advise is a no-op on platforms without madvise support.
func (m *Map) Advise(pattern Access) error { return nil }

// AdviseRange validates its arguments exactly like the Linux
// implementation — callers must not compile in range bugs just because
// they developed on another platform — and otherwise does nothing.
func (m *Map) AdviseRange(off, n int64, pattern Access) error {
	if off < 0 || n < 0 || off+n > int64(len(m.data)) {
		return fmt.Errorf("mmap: advise range [%d, +%d) out of range (len %d)", off, n, len(m.data))
	}
	return nil
}
