//go:build !linux

package mmap

// Advise is a no-op on platforms without madvise support.
func (m *Map) Advise(pattern Access) error { return nil }
