package mmap

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func modes(t *testing.T) []Mode {
	t.Helper()
	ms := []Mode{ModeHeap}
	if osMapSupported {
		ms = append(ms, ModeOS)
	}
	return ms
}

func modeName(m Mode) string {
	switch m {
	case ModeOS:
		return "os"
	case ModeHeap:
		return "heap"
	default:
		return "auto"
	}
}

func TestCreateWriteReopen(t *testing.T) {
	for _, mode := range modes(t) {
		t.Run(modeName(mode), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "f.bin")
			m, err := Create(path, 4096, Options{Mode: mode})
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			copy(m.Bytes(), []byte("hello gpsa"))
			if err := m.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := m.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			r, err := Open(path, Options{Mode: mode})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer r.Close()
			if got := string(r.Bytes()[:10]); got != "hello gpsa" {
				t.Fatalf("reopened contents = %q, want %q", got, "hello gpsa")
			}
			if r.Writable() {
				t.Fatal("read-only open reports writable")
			}
		})
	}
}

func TestCreateRejectsBadSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	if _, err := Create(path, 0, Options{}); err == nil {
		t.Fatal("Create with size 0 succeeded, want error")
	}
	if _, err := Create(path, -5, Options{}); err == nil {
		t.Fatal("Create with negative size succeeded, want error")
	}
}

func TestOpenMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(filepath.Join(dir, "missing"), Options{}); err == nil {
		t.Fatal("Open missing file succeeded")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(empty, Options{}); err == nil {
		t.Fatal("Open empty file succeeded, want error")
	}
}

func TestSyncOnReadOnlyFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	m, err := Create(path, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Sync(); err == nil {
		t.Fatal("Sync on read-only map succeeded, want error")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	m, err := Create(path, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := m.Sync(); err == nil {
		t.Fatal("Sync after Close succeeded, want error")
	}
}

func TestUint64View(t *testing.T) {
	for _, mode := range modes(t) {
		t.Run(modeName(mode), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "f.bin")
			m, err := Create(path, 8*16, Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			w, err := m.Uint64s(0, 16)
			if err != nil {
				t.Fatal(err)
			}
			for i := range w {
				w[i] = uint64(i) * 0x0101010101010101
			}
			if err := m.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}

			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				got := binary.LittleEndian.Uint64(raw[8*i:])
				want := uint64(i) * 0x0101010101010101
				if got != want {
					t.Fatalf("word %d = %#x, want %#x", i, got, want)
				}
			}
		})
	}
}

func TestViewBoundsChecks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	m, err := Create(path, 64, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	cases := []struct{ off, n int64 }{
		{-8, 1}, {0, -1}, {0, 9}, {64, 1}, {3, 1},
	}
	for _, c := range cases {
		if _, err := m.Uint64s(c.off, c.n); err == nil {
			t.Errorf("Uint64s(%d, %d) succeeded, want error", c.off, c.n)
		}
	}
	if v, err := m.Uint64s(0, 0); err != nil || v != nil {
		t.Errorf("Uint64s(0,0) = %v, %v; want nil, nil", v, err)
	}
	if _, err := m.Uint32s(2, 1); err == nil {
		t.Error("Uint32s misaligned offset succeeded, want error")
	}
	if _, err := m.Uint32s(0, 17); err == nil {
		t.Error("Uint32s out of range succeeded, want error")
	}
}

func TestHeapWriteBackOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	m, err := Create(path, 32, Options{Mode: ModeHeap})
	if err != nil {
		t.Fatal(err)
	}
	copy(m.Bytes(), []byte("persisted-without-sync"))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(raw, []byte("persisted-without-sync")) {
		t.Fatalf("heap map contents not written back on Close: %q", raw[:22])
	}
}

// Property: any byte pattern written through a mapping is read back
// identically after close/reopen, for both backings.
func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	fn := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		i++
		path := filepath.Join(dir, "p"+modeName(Mode(i%2))+string(rune('a'+i%26)))
		mode := ModeHeap
		if osMapSupported && i%2 == 0 {
			mode = ModeOS
		}
		m, err := Create(path, int64(len(data)), Options{Mode: mode})
		if err != nil {
			t.Logf("create: %v", err)
			return false
		}
		copy(m.Bytes(), data)
		if err := m.Close(); err != nil {
			t.Logf("close: %v", err)
			return false
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return bytes.Equal(raw, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAdvise(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	for _, mode := range modes(t) {
		m, err := Create(path, 4096, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Access{AccessNormal, AccessSequential, AccessRandom, AccessWillNeed} {
			if err := m.Advise(p); err != nil {
				t.Fatalf("Advise(%v) on %s map: %v", p, modeName(mode), err)
			}
		}
		if osMapSupported && mode == ModeOS {
			if err := m.Advise(Access(99)); err == nil {
				t.Fatal("Advise with bogus pattern succeeded")
			}
		}
		m.Close()
	}
}

func TestLenAndUint32View(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.bin")
	m, err := Create(path, 128, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 128 {
		t.Fatalf("Len = %d, want 128", m.Len())
	}
	w, err := m.Uint32s(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	w[0], w[1], w[2] = 1, 2, 3
	raw := m.Bytes()
	if binary.LittleEndian.Uint32(raw[4:]) != 1 || binary.LittleEndian.Uint32(raw[12:]) != 3 {
		t.Fatal("Uint32 view not aliased to mapping")
	}
	if v, err := m.Uint32s(0, 0); err != nil || v != nil {
		t.Fatalf("Uint32s(0,0) = %v, %v", v, err)
	}
	if _, err := m.Uint32s(-4, 1); err == nil {
		t.Fatal("negative offset accepted")
	}
}
