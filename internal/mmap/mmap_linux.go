//go:build linux

package mmap

import (
	"fmt"
	"os"
	"syscall"
)

const (
	osMapSupported = true
	maxMapSize     = 1 << 46 // 64 TiB, far beyond any dataset here
)

func newOSMap(f *os.File, size int64, writable bool) (*Map, error) {
	prot := syscall.PROT_READ
	if writable {
		prot |= syscall.PROT_WRITE
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), prot, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %s: %w", f.Name(), err)
	}
	return &Map{f: f, data: data, writable: writable}, nil
}

func (m *Map) msync() error {
	if len(m.data) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(addrOf(m.data)), uintptr(len(m.data)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("mmap: msync: %w", errno)
	}
	return nil
}

// msyncRange syncs the page-aligned span covering [off, off+n). msync
// demands a page-aligned address, so the range is widened down to the
// containing page boundary — syncing more than asked is always safe.
func (m *Map) msyncRange(off, n int64) error {
	page := int64(os.Getpagesize())
	start := off &^ (page - 1)
	length := off + n - start
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		addrOf(m.data)+uintptr(start), uintptr(length), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("mmap: msync [%d, +%d): %w", start, length, errno)
	}
	return nil
}

func (m *Map) munmap() error {
	if len(m.data) == 0 {
		return nil
	}
	if err := syscall.Munmap(m.data); err != nil {
		return fmt.Errorf("mmap: munmap: %w", err)
	}
	return nil
}
