// Package mmap provides memory-mapped file access for the GPSA storage
// layer.
//
// GPSA leans on the operating system's virtual memory subsystem instead of
// explicit buffer management: the vertex value file is mapped read-write so
// that dispatchers and computing workers can access values at random with
// demand paging, and the CSR edge file is mapped read-only and streamed
// sequentially. On platforms (or in tests) where a real mapping is not
// wanted, a heap-backed mapping offers the same interface with explicit
// read/write-back semantics.
package mmap

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/diskio"
	"repro/internal/fault"
)

// closeJoin closes f on a constructor error path, joining the close error
// into the primary one so a failing close is never silently dropped.
func closeJoin(err error, f *os.File) error {
	return errors.Join(err, f.Close())
}

// Mode selects how a Map is backed.
type Mode int

const (
	// ModeAuto uses a real OS memory mapping when the platform supports
	// it, falling back to a heap buffer otherwise.
	ModeAuto Mode = iota
	// ModeOS forces a real memory mapping and fails if unsupported.
	ModeOS
	// ModeHeap reads the file into an anonymous buffer; Sync writes the
	// buffer back with pwrite. Useful for tests and as a portability
	// fallback (it exercises the same call sites).
	ModeHeap
)

// Map is a byte-addressable view of a file.
//
// The zero value is not usable; obtain a Map from Open or Create. A Map is
// safe for concurrent readers. Concurrent writers must coordinate among
// themselves (the GPSA engine partitions slots across workers so writers
// never overlap).
type Map struct {
	mu       sync.Mutex
	f        *os.File
	data     []byte
	heap     bool // heap-backed: Sync must write back
	writable bool
	closed   bool
}

// Options configures Open and Create.
type Options struct {
	// Writable maps the file read-write. Read-only maps reject Sync.
	Writable bool
	// Mode selects the backing strategy. The zero value is ModeAuto.
	Mode Mode
}

// Create creates (or truncates) the file at path with the given size and
// maps it writable. Size must be positive.
func Create(path string, size int64, opts Options) (*Map, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mmap: create %s: non-positive size %d", path, size)
	}
	f, err := diskio.OpenRaw(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mmap: create: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		return nil, closeJoin(fmt.Errorf("mmap: truncate %s to %d: %w", path, size, err), f)
	}
	opts.Writable = true
	m, err := newMap(f, size, opts)
	if err != nil {
		return nil, closeJoin(err, f)
	}
	return m, nil
}

// Open maps an existing file in its entirety.
func Open(path string, opts Options) (*Map, error) {
	flag := os.O_RDONLY
	if opts.Writable {
		flag = os.O_RDWR
	}
	f, err := diskio.OpenRaw(path, flag, 0)
	if err != nil {
		return nil, fmt.Errorf("mmap: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, closeJoin(fmt.Errorf("mmap: stat %s: %w", path, err), f)
	}
	if st.Size() == 0 {
		return nil, closeJoin(fmt.Errorf("mmap: open %s: empty file", path), f)
	}
	m, err := newMap(f, st.Size(), opts)
	if err != nil {
		return nil, closeJoin(err, f)
	}
	return m, nil
}

func newMap(f *os.File, size int64, opts Options) (*Map, error) {
	if size > int64(maxMapSize) {
		return nil, fmt.Errorf("mmap: %s: size %d exceeds platform limit", f.Name(), size)
	}
	switch opts.Mode {
	case ModeHeap:
		return newHeapMap(f, size, opts.Writable)
	case ModeOS:
		return newOSMap(f, size, opts.Writable)
	default:
		if osMapSupported {
			return newOSMap(f, size, opts.Writable)
		}
		return newHeapMap(f, size, opts.Writable)
	}
}

func newHeapMap(f *os.File, size int64, writable bool) (*Map, error) {
	buf := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), buf); err != nil {
		return nil, fmt.Errorf("mmap: heap read %s: %w", f.Name(), err)
	}
	return &Map{f: f, data: buf, heap: true, writable: writable}, nil
}

// Bytes returns the mapped contents. The slice is valid until Close.
func (m *Map) Bytes() []byte { return m.data }

// Len returns the length of the mapping in bytes.
func (m *Map) Len() int { return len(m.data) }

// Writable reports whether the mapping accepts writes.
func (m *Map) Writable() bool { return m.writable }

// Sync flushes modified pages back to the file. For heap-backed maps this
// writes the whole buffer with pwrite followed by fsync; for OS maps it
// issues msync.
func (m *Map) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("mmap: sync on closed map")
	}
	if !m.writable {
		return fmt.Errorf("mmap: sync on read-only map")
	}
	if ferr := fault.Error(fault.SiteMmapSync); ferr != nil {
		return fmt.Errorf("mmap: sync %s: %w", m.f.Name(), ferr)
	}
	if ferr := diskio.SyncFault(m.f.Name()); ferr != nil {
		return fmt.Errorf("mmap: sync %s: %w", m.f.Name(), ferr)
	}
	if m.heap {
		if _, err := m.f.WriteAt(m.data, 0); err != nil {
			return fmt.Errorf("mmap: write-back: %w", diskio.Classify("write", m.f.Name(), err))
		}
		return diskio.Classify("sync", m.f.Name(), m.f.Sync())
	}
	return diskio.Classify("sync", m.f.Name(), m.msync())
}

// SyncRange flushes only the byte range [off, off+n) of the mapping back
// to the file. Ranged syncs are what lets the vertex value file enforce
// write ordering — columns before header seal — without paying a
// whole-file msync per transition. For heap-backed maps the range is
// written back with pwrite followed by fsync; for OS maps msync is issued
// on the page-aligned span covering the range.
func (m *Map) SyncRange(off, n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("mmap: sync on closed map")
	}
	if !m.writable {
		return fmt.Errorf("mmap: sync on read-only map")
	}
	if off < 0 || n < 0 || off+n > int64(len(m.data)) {
		return fmt.Errorf("mmap: sync range [%d, +%d) out of range (len %d)", off, n, len(m.data))
	}
	if n == 0 {
		return nil
	}
	if ferr := fault.Error(fault.SiteMmapSync); ferr != nil {
		return fmt.Errorf("mmap: sync %s: %w", m.f.Name(), ferr)
	}
	if ferr := diskio.SyncFault(m.f.Name()); ferr != nil {
		return fmt.Errorf("mmap: sync %s: %w", m.f.Name(), ferr)
	}
	if m.heap {
		if _, err := m.f.WriteAt(m.data[off:off+n], off); err != nil {
			return fmt.Errorf("mmap: write-back: %w", diskio.Classify("write", m.f.Name(), err))
		}
		return diskio.Classify("sync", m.f.Name(), m.f.Sync())
	}
	return diskio.Classify("sync", m.f.Name(), m.msyncRange(off, n))
}

// Close unmaps the file and closes the underlying descriptor. Writable
// OS mappings are msync'd first; heap mappings are written back.
func (m *Map) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	var firstErr error
	if m.writable {
		if m.heap {
			if _, err := m.f.WriteAt(m.data, 0); err != nil && firstErr == nil {
				firstErr = err
			}
		} else {
			if err := m.msync(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if !m.heap {
		if err := m.munmap(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	m.data = nil
	if err := m.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Access describes an expected access pattern for Advise.
type Access int

// Access patterns accepted by Advise and AdviseRange.
const (
	AccessNormal Access = iota
	AccessSequential
	AccessRandom
	AccessWillNeed
	// AccessDontNeed tells the kernel the range will not be touched
	// again soon, releasing its page-cache residency. The prefetch actor
	// trails it behind the dispatch cursor so a streamed CSR interval
	// does not evict the vertex value working set on out-of-core runs.
	AccessDontNeed
)
