//go:build !linux

package mmap

import (
	"fmt"
	"os"
)

const (
	osMapSupported = false
	maxMapSize     = 1 << 40
)

func newOSMap(f *os.File, size int64, writable bool) (*Map, error) {
	return nil, fmt.Errorf("mmap: OS mapping not supported on this platform")
}

func (m *Map) msync() error                  { return nil }
func (m *Map) msyncRange(off, n int64) error { return nil }
func (m *Map) munmap() error                 { return nil }
