package graphchi

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/graph"
)

// edgeRec is one on-disk shard record: a directed edge and its mutable
// value.
type edgeRec struct {
	Src graph.VertexID
	Dst graph.VertexID
	Val uint64
}

const edgeRecBytes = 16

const shardMagic = 0x44485347 // "GSHD"

// shardMeta describes one shard file: edges with Dst in one interval,
// sorted by Src. index[i] is the position of the first edge with
// Src >= intervals[i], so the sliding window for interval i is
// records [index[i], index[i+1]).
type shardMeta struct {
	path     string
	numEdges int64
	index    []int64 // len = P+1
}

// Layout describes a sharded graph on disk.
type Layout struct {
	Dir         string
	NumVertices int64
	NumEdges    int64
	Intervals   []int64 // vertex interval boundaries, len P+1
	shards      []shardMeta
}

// P returns the number of intervals/shards.
func (l *Layout) P() int { return len(l.Intervals) - 1 }

// intervalOf returns the interval index containing vertex v.
func (l *Layout) intervalOf(v graph.VertexID) int {
	// Intervals are sorted; binary search for the last boundary <= v.
	i := sort.Search(len(l.Intervals)-1, func(i int) bool { return l.Intervals[i+1] > int64(v) })
	return i
}

// EdgeInit supplies the initial value stored on each edge at sharding
// time (GraphChi programs receive their first "messages" this way).
type EdgeInit func(src int64, outDeg uint32, dst graph.VertexID, weight float32) uint64

// Shard partitions g into nshards intervals balanced by in-edge count and
// writes shard files into dir. The returned layout is also persisted as
// dir/meta.
func Shard(g *graph.CSR, dir string, nshards int, initEdge EdgeInit) (*Layout, error) {
	if nshards < 1 {
		nshards = 1
	}
	if g.NumVertices == 0 {
		return nil, fmt.Errorf("graphchi: empty graph")
	}
	if initEdge == nil {
		initEdge = func(int64, uint32, graph.VertexID, float32) uint64 { return 0 }
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("graphchi: %w", err)
	}

	// Choose interval boundaries balancing in-edges.
	indeg := make([]int64, g.NumVertices)
	for v := int64(0); v < g.NumVertices; v++ {
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			indeg[d]++
		}
	}
	intervals := make([]int64, 1, nshards+1)
	target := (g.NumEdges + int64(nshards) - 1) / int64(nshards)
	var acc int64
	for v := int64(0); v < g.NumVertices; v++ {
		acc += indeg[v]
		if acc >= target && len(intervals) < nshards && v+1 < g.NumVertices {
			intervals = append(intervals, v+1)
			acc = 0
		}
	}
	intervals = append(intervals, g.NumVertices)
	p := len(intervals) - 1

	layout := &Layout{Dir: dir, NumVertices: g.NumVertices, NumEdges: g.NumEdges, Intervals: intervals}

	// Bucket edges per destination shard. Source-sorted order falls out
	// naturally from iterating vertices in id order.
	buckets := make([][]edgeRec, p)
	for v := int64(0); v < g.NumVertices; v++ {
		deg := g.OutDegree(graph.VertexID(v))
		ws := g.EdgeWeights(graph.VertexID(v))
		for i, d := range g.Neighbors(graph.VertexID(v)) {
			var w float32
			if ws != nil {
				w = ws[i]
			}
			s := layout.intervalOf(d)
			buckets[s] = append(buckets[s], edgeRec{
				Src: graph.VertexID(v),
				Dst: d,
				Val: initEdge(v, deg, d, w),
			})
		}
	}

	layout.shards = make([]shardMeta, p)
	for s := 0; s < p; s++ {
		meta, err := writeShard(filepath.Join(dir, fmt.Sprintf("shard-%03d.bin", s)), buckets[s], intervals)
		if err != nil {
			return nil, err
		}
		layout.shards[s] = meta
	}
	if err := layout.saveMeta(); err != nil {
		return nil, err
	}
	return layout, nil
}

func writeShard(path string, edges []edgeRec, intervals []int64) (shardMeta, error) {
	// Edges arrive source-sorted; index[i] is the position of the first
	// edge with Src >= intervals[i], so interval i's sliding window is
	// records [index[i], index[i+1]).
	index := make([]int64, len(intervals))
	pos := 0
	for i := range intervals {
		for pos < len(edges) && int64(edges[pos].Src) < intervals[i] {
			pos++
		}
		index[i] = int64(pos)
	}

	f, err := os.Create(path)
	if err != nil {
		return shardMeta{}, fmt.Errorf("graphchi: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], shardMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(intervals)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		f.Close()
		return shardMeta{}, err
	}
	var idx [8]byte
	for _, off := range index {
		binary.LittleEndian.PutUint64(idx[:], uint64(off))
		if _, err := bw.Write(idx[:]); err != nil {
			f.Close()
			return shardMeta{}, err
		}
	}
	var rec [edgeRecBytes]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint32(rec[0:], e.Src)
		binary.LittleEndian.PutUint32(rec[4:], e.Dst)
		binary.LittleEndian.PutUint64(rec[8:], e.Val)
		if _, err := bw.Write(rec[:]); err != nil {
			f.Close()
			return shardMeta{}, err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return shardMeta{}, err
	}
	if err := f.Close(); err != nil {
		return shardMeta{}, err
	}
	return shardMeta{path: path, numEdges: int64(len(edges)), index: index}, nil
}

func (l *Layout) metaPath() string { return filepath.Join(l.Dir, "meta") }

func (l *Layout) saveMeta() error {
	f, err := os.Create(l.metaPath())
	if err != nil {
		return fmt.Errorf("graphchi: %w", err)
	}
	bw := bufio.NewWriter(f)
	write64 := func(x int64) { binary.Write(bw, binary.LittleEndian, x) } //nolint:errcheck // flushed below
	write64(l.NumVertices)
	write64(l.NumEdges)
	write64(int64(len(l.Intervals)))
	for _, b := range l.Intervals {
		write64(b)
	}
	for _, s := range l.shards {
		write64(s.numEdges)
		for _, off := range s.index {
			write64(off)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// OpenLayout loads a sharded graph previously written by Shard.
func OpenLayout(dir string) (*Layout, error) {
	f, err := os.Open(filepath.Join(dir, "meta"))
	if err != nil {
		return nil, fmt.Errorf("graphchi: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	read64 := func() (int64, error) {
		var x int64
		err := binary.Read(br, binary.LittleEndian, &x)
		return x, err
	}
	l := &Layout{Dir: dir}
	if l.NumVertices, err = read64(); err != nil {
		return nil, fmt.Errorf("graphchi: meta: %w", err)
	}
	if l.NumEdges, err = read64(); err != nil {
		return nil, fmt.Errorf("graphchi: meta: %w", err)
	}
	nb, err := read64()
	if err != nil || nb < 2 || nb > 1<<20 {
		return nil, fmt.Errorf("graphchi: meta: bad interval count %d (%v)", nb, err)
	}
	l.Intervals = make([]int64, nb)
	for i := range l.Intervals {
		if l.Intervals[i], err = read64(); err != nil {
			return nil, fmt.Errorf("graphchi: meta: %w", err)
		}
	}
	p := int(nb) - 1
	l.shards = make([]shardMeta, p)
	for s := 0; s < p; s++ {
		if l.shards[s].numEdges, err = read64(); err != nil {
			return nil, fmt.Errorf("graphchi: meta: %w", err)
		}
		l.shards[s].index = make([]int64, nb)
		for i := range l.shards[s].index {
			if l.shards[s].index[i], err = read64(); err != nil {
				return nil, fmt.Errorf("graphchi: meta: %w", err)
			}
		}
		l.shards[s].path = filepath.Join(dir, fmt.Sprintf("shard-%03d.bin", s))
	}
	return l, nil
}

// shard I/O helpers ----------------------------------------------------

func (s *shardMeta) headerBytes(p int) int64 { return 16 + 8*int64(p+1) }

// readRange reads edge records [from, to) of the shard.
func (s *shardMeta) readRange(p int, from, to int64) ([]edgeRec, error) {
	if from > to || to > s.numEdges {
		return nil, fmt.Errorf("graphchi: read range [%d, %d) of %d edges", from, to, s.numEdges)
	}
	n := to - from
	if n == 0 {
		return nil, nil
	}
	f, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("graphchi: %w", err)
	}
	defer f.Close()
	buf := make([]byte, n*edgeRecBytes)
	if _, err := f.ReadAt(buf, s.headerBytes(p)+from*edgeRecBytes); err != nil {
		return nil, fmt.Errorf("graphchi: read %s: %w", s.path, err)
	}
	out := make([]edgeRec, n)
	for i := range out {
		b := buf[i*edgeRecBytes:]
		out[i] = edgeRec{
			Src: binary.LittleEndian.Uint32(b[0:]),
			Dst: binary.LittleEndian.Uint32(b[4:]),
			Val: binary.LittleEndian.Uint64(b[8:]),
		}
	}
	return out, nil
}

// writeRange writes edge records back at position from.
func (s *shardMeta) writeRange(p int, from int64, recs []edgeRec) error {
	if from+int64(len(recs)) > s.numEdges {
		return fmt.Errorf("graphchi: write range overruns shard")
	}
	if len(recs) == 0 {
		return nil
	}
	f, err := os.OpenFile(s.path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("graphchi: %w", err)
	}
	defer f.Close()
	buf := make([]byte, len(recs)*edgeRecBytes)
	for i, e := range recs {
		b := buf[i*edgeRecBytes:]
		binary.LittleEndian.PutUint32(b[0:], e.Src)
		binary.LittleEndian.PutUint32(b[4:], e.Dst)
		binary.LittleEndian.PutUint64(b[8:], e.Val)
	}
	if _, err := f.WriteAt(buf, s.headerBytes(p)+from*edgeRecBytes); err != nil {
		return fmt.Errorf("graphchi: write %s: %w", s.path, err)
	}
	return f.Close()
}
