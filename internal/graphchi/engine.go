package graphchi

import (
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/mmap"
)

// Program is a GraphChi-style vertex update function: it reads in-edge
// values, writes out-edge values, and mutates the vertex value.
type Program interface {
	// InitVertex supplies the initial vertex value and whether the vertex
	// is scheduled for the first superstep.
	InitVertex(v int64) (value uint64, scheduled bool)
	// Update recomputes one vertex. Returning true schedules the
	// vertex's out-neighbors for the next superstep.
	Update(v *Vertex) (scheduleNeighbors bool)
}

// Vertex is the update function's view of one vertex.
type Vertex struct {
	id    int64
	value uint64
	in    []edgeSlot
	out   []edgeSlot
	dirty bool
}

// edgeSlot locates one edge record in a loaded buffer.
type edgeSlot struct {
	buf []edgeRec
	i   int32
}

// ID returns the vertex id.
func (v *Vertex) ID() int64 { return v.id }

// Value returns the current vertex value.
func (v *Vertex) Value() uint64 { return v.value }

// SetValue replaces the vertex value.
func (v *Vertex) SetValue(x uint64) { v.value = x }

// NumIn returns the in-degree.
func (v *Vertex) NumIn() int { return len(v.in) }

// InVal returns in-edge i's value.
func (v *Vertex) InVal(i int) uint64 { s := v.in[i]; return s.buf[s.i].Val }

// InSrc returns in-edge i's source vertex.
func (v *Vertex) InSrc(i int) graph.VertexID { s := v.in[i]; return s.buf[s.i].Src }

// NumOut returns the out-degree.
func (v *Vertex) NumOut() int { return len(v.out) }

// OutDst returns out-edge i's destination vertex.
func (v *Vertex) OutDst(i int) graph.VertexID { s := v.out[i]; return s.buf[s.i].Dst }

// OutVal returns out-edge i's current value.
func (v *Vertex) OutVal(i int) uint64 { s := v.out[i]; return s.buf[s.i].Val }

// SetOutVal writes out-edge i's value (how GraphChi programs communicate
// with neighbors).
func (v *Vertex) SetOutVal(i int, val uint64) {
	s := v.out[i]
	s.buf[s.i].Val = val
	v.dirty = true
}

// Config tunes the engine.
type Config struct {
	// MaxSupersteps caps the run (default 100). The engine halts early
	// when no vertex is scheduled.
	MaxSupersteps int
	// Parallelism bounds concurrent vertex updates within an interval
	// (default 1: GraphChi's deterministic sequential order). Values > 1
	// update "safe" vertices — those with no intra-interval edges — in
	// parallel, exactly GraphChi's multithreaded execution rule: vertices
	// sharing an edge record inside the interval stay sequential, so
	// results are identical to the sequential order.
	Parallelism int
	// Progress, when non-nil, receives per-superstep stats.
	Progress func(StepStats)
}

// StepStats records one superstep.
type StepStats struct {
	Step            int
	UpdatedVertices int64
	EdgesRead       int64
	Duration        time.Duration
}

// Result summarizes a run.
type Result struct {
	Supersteps int
	Converged  bool
	Updated    int64
	EdgesRead  int64
	Duration   time.Duration
	Steps      []StepStats
}

// Engine executes programs over a sharded layout with parallel sliding
// windows. Vertex values live in a memory-mapped file in the layout
// directory (GraphChi's vertex data file); call Close when done.
type Engine struct {
	layout *Layout
	prog   Program
	cfg    Config

	valMap    *mmap.Map
	vals      []uint64
	sched     []bool
	nextSched []bool
}

// NewEngine prepares an engine; vertex values and the scheduling bitmap
// are (re)initialized from the program.
func NewEngine(layout *Layout, prog Program, cfg Config) (*Engine, error) {
	if prog == nil {
		return nil, fmt.Errorf("graphchi: nil program")
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 100
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	vm, err := mmap.Create(filepath.Join(layout.Dir, "values.bin"), 8*layout.NumVertices, mmap.Options{})
	if err != nil {
		return nil, fmt.Errorf("graphchi: vertex data file: %w", err)
	}
	vals, err := vm.Uint64s(0, layout.NumVertices)
	if err != nil {
		vm.Close()
		return nil, err
	}
	e := &Engine{
		layout:    layout,
		prog:      prog,
		cfg:       cfg,
		valMap:    vm,
		vals:      vals,
		sched:     make([]bool, layout.NumVertices),
		nextSched: make([]bool, layout.NumVertices),
	}
	for v := int64(0); v < layout.NumVertices; v++ {
		e.vals[v], e.sched[v] = prog.InitVertex(v)
	}
	return e, nil
}

// Close flushes and unmaps the vertex data file.
func (e *Engine) Close() error {
	if e.valMap == nil {
		return nil
	}
	err := e.valMap.Close()
	e.valMap = nil
	e.vals = nil
	return err
}

// Value returns vertex v's current value.
func (e *Engine) Value(v int64) uint64 { return e.vals[v] }

// Values returns a copy of all vertex values.
func (e *Engine) Values() []uint64 {
	out := make([]uint64, len(e.vals))
	copy(out, e.vals)
	return out
}

// Run executes supersteps until convergence or the step cap.
func (e *Engine) Run() (*Result, error) {
	res := &Result{}
	start := time.Now()
	for step := 0; step < e.cfg.MaxSupersteps; step++ {
		t0 := time.Now()
		updated, edgesRead, err := e.superstep()
		if err != nil {
			return res, err
		}
		st := StepStats{Step: step, UpdatedVertices: updated, EdgesRead: edgesRead, Duration: time.Since(t0)}
		res.Steps = append(res.Steps, st)
		res.Supersteps++
		res.Updated += updated
		res.EdgesRead += edgesRead
		if e.cfg.Progress != nil {
			e.cfg.Progress(st)
		}
		if updated == 0 {
			res.Converged = true
			break
		}
	}
	res.Duration = time.Since(start)
	return res, nil
}

// superstep runs one PSW pass over all intervals.
func (e *Engine) superstep() (updated, edgesRead int64, err error) {
	p := e.layout.P()
	for i := 0; i < p; i++ {
		lo, hi := e.layout.Intervals[i], e.layout.Intervals[i+1]
		if !anyScheduled(e.sched[lo:hi]) {
			continue
		}
		u, er, err := e.execInterval(i)
		if err != nil {
			return updated, edgesRead, err
		}
		updated += u
		edgesRead += er
	}
	e.sched, e.nextSched = e.nextSched, e.sched
	clearBools(e.nextSched)
	return updated, edgesRead, nil
}

func anyScheduled(b []bool) bool {
	for _, x := range b {
		if x {
			return true
		}
	}
	return false
}

func clearBools(b []bool) {
	for i := range b {
		b[i] = false
	}
}

// execInterval loads the memory shard and sliding windows for interval i,
// updates its scheduled vertices, and writes everything back.
func (e *Engine) execInterval(i int) (updated, edgesRead int64, err error) {
	l := e.layout
	p := l.P()
	lo, hi := l.Intervals[i], l.Intervals[i+1]

	// 1. Memory shard: all in-edges of interval i.
	mem, err := l.shards[i].readRange(p, 0, l.shards[i].numEdges)
	if err != nil {
		return 0, 0, err
	}
	edgesRead += int64(len(mem))

	// 2. Sliding windows: interval i's out-edges in every other shard.
	// The window of shard i itself lies inside the memory shard.
	wins := make([][]edgeRec, p)
	winFrom := make([]int64, p)
	for j := 0; j < p; j++ {
		from, to := l.shards[j].index[i], l.shards[j].index[i+1]
		winFrom[j] = from
		if j == i {
			wins[j] = mem[from:to]
			continue
		}
		w, err := l.shards[j].readRange(p, from, to)
		if err != nil {
			return 0, 0, err
		}
		wins[j] = w
		edgesRead += int64(len(w))
	}

	// 3. Per-vertex edge indexes for the interval.
	n := int(hi - lo)
	inIdx := make([][]edgeSlot, n)
	for k := range mem {
		d := int64(mem[k].Dst) - lo
		inIdx[d] = append(inIdx[d], edgeSlot{buf: mem, i: int32(k)})
	}
	outIdx := make([][]edgeSlot, n)
	for j := 0; j < p; j++ {
		w := wins[j]
		for k := range w {
			s := int64(w[k].Src) - lo
			outIdx[s] = append(outIdx[s], edgeSlot{buf: w, i: int32(k)})
		}
	}

	// 4. Vertex updates. Vertices with an intra-interval edge ("critical"
	// in GraphChi's terms — they share edge records with other interval
	// vertices) run sequentially in id order; the rest may run in
	// parallel, which cannot change the outcome because they share no
	// records with any concurrently updated vertex.
	critical := make([]bool, n)
	for k := range wins[i] {
		// Edges with both endpoints inside the interval: the memory
		// shard's own sliding window.
		e := &wins[i][k]
		critical[int64(e.Src)-lo] = true
		critical[int64(e.Dst)-lo] = true
	}

	anyDirty := false
	runVertex := func(d int) (dirty bool, scheduled []graph.VertexID) {
		v := lo + int64(d)
		vert := Vertex{id: v, value: e.vals[v], in: inIdx[d], out: outIdx[d]}
		schedule := e.prog.Update(&vert)
		e.vals[v] = vert.value
		if schedule {
			scheduled = make([]graph.VertexID, 0, len(outIdx[d]))
			for _, s := range outIdx[d] {
				scheduled = append(scheduled, s.buf[s.i].Dst)
			}
		}
		return vert.dirty, scheduled
	}

	if e.cfg.Parallelism <= 1 {
		for d := 0; d < n; d++ {
			if !e.sched[lo+int64(d)] {
				continue
			}
			dirty, scheduled := runVertex(d)
			updated++
			anyDirty = anyDirty || dirty
			for _, dst := range scheduled {
				e.nextSched[dst] = true
			}
		}
	} else {
		// Phase 1: critical vertices, sequential, id order.
		var safe []int
		for d := 0; d < n; d++ {
			if !e.sched[lo+int64(d)] {
				continue
			}
			if critical[d] {
				dirty, scheduled := runVertex(d)
				updated++
				anyDirty = anyDirty || dirty
				for _, dst := range scheduled {
					e.nextSched[dst] = true
				}
			} else {
				safe = append(safe, d)
			}
		}
		// Phase 2: safe vertices in parallel.
		var mu sync.Mutex
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.cfg.Parallelism)
		for _, d := range safe {
			wg.Add(1)
			sem <- struct{}{}
			go func(d int) {
				defer wg.Done()
				defer func() { <-sem }()
				dirty, scheduled := runVertex(d)
				mu.Lock()
				updated++
				anyDirty = anyDirty || dirty
				for _, dst := range scheduled {
					e.nextSched[dst] = true
				}
				mu.Unlock()
			}(d)
		}
		wg.Wait()
	}

	// 5. Write back the memory shard and dirty windows.
	if anyDirty {
		if err := l.shards[i].writeRange(p, 0, mem); err != nil {
			return updated, edgesRead, err
		}
		for j := 0; j < p; j++ {
			if j == i {
				continue
			}
			if err := l.shards[j].writeRange(p, winFrom[j], wins[j]); err != nil {
				return updated, edgesRead, err
			}
		}
	}
	return updated, edgesRead, nil
}
