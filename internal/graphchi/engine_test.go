package graphchi_test

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphchi"
)

func shard(t testing.TB, g *graph.CSR, p int, init graphchi.EdgeInit) *graphchi.Layout {
	t.Helper()
	l, err := graphchi.Shard(g, t.TempDir(), p, init)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func rmat(t testing.TB, v int64, e int64, seed int64) *graph.CSR {
	t.Helper()
	g, err := gen.RMATGraph(gen.RMATConfig{Vertices: v, Edges: e, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShardLayoutRoundTrip(t *testing.T) {
	g := rmat(t, 300, 2000, 1)
	dir := t.TempDir()
	l, err := graphchi.Shard(g, dir, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.P() < 1 || l.P() > 4 {
		t.Fatalf("P = %d", l.P())
	}
	re, err := graphchi.OpenLayout(dir)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumVertices != l.NumVertices || re.NumEdges != l.NumEdges || re.P() != l.P() {
		t.Fatalf("reloaded layout differs: %+v vs %+v", re, l)
	}
}

func TestShardRejectsEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(nil, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := graphchi.Shard(g, t.TempDir(), 2, nil); err == nil {
		t.Fatal("sharding an empty graph succeeded")
	}
}

func TestChiBFSMatchesTrueBFS(t *testing.T) {
	g := rmat(t, 400, 2500, 2)
	prog := algorithms.ChiBFS{Root: 0}
	l := shard(t, g, 5, prog.EdgeInit)
	e, err := graphchi.NewEngine(l, prog, graphchi.Config{MaxSupersteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BFS did not converge in %d supersteps", res.Supersteps)
	}
	want := algorithms.TrueBFS(g, 0)
	for v := int64(0); v < g.NumVertices; v++ {
		got := e.Value(v)
		if want[v] == -1 {
			if got != algorithms.Unreached {
				t.Fatalf("vertex %d: level %d, want unreached", v, got)
			}
			continue
		}
		if got != uint64(want[v]) {
			t.Fatalf("vertex %d: level %d, want %d", v, got, want[v])
		}
	}
}

func TestChiCCMatchesUnionFind(t *testing.T) {
	g := rmat(t, 300, 900, 3).Symmetrize()
	l := shard(t, g, 4, algorithms.ChiCC{}.EdgeInit)
	e, err := graphchi.NewEngine(l, algorithms.ChiCC{}, graphchi.Config{MaxSupersteps: 300})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("CC did not converge")
	}
	want := algorithms.TrueComponents(g)
	for v := int64(0); v < g.NumVertices; v++ {
		if e.Value(v) != uint64(want[v]) {
			t.Fatalf("vertex %d: label %d, want %d", v, e.Value(v), want[v])
		}
	}
}

func TestChiPageRankApproachesTruePageRank(t *testing.T) {
	g := rmat(t, 200, 1600, 4)
	prog := algorithms.ChiPageRank{}
	l := shard(t, g, 3, prog.EdgeInit)
	e, err := graphchi.NewEngine(l, prog, graphchi.Config{MaxSupersteps: 60})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	truth := algorithms.TruePageRank(g, 0.85, 200)
	for v := int64(0); v < g.NumVertices; v++ {
		got := math.Float64frombits(e.Value(v))
		if math.Abs(got-truth[v]) > 1e-3*(1+truth[v]) {
			t.Fatalf("vertex %d: rank %g, want %g", v, got, truth[v])
		}
	}
}

func TestSelectiveSchedulingSkipsConvergedWork(t *testing.T) {
	// A long path directed against interval order (v+1 -> v, root at the
	// top): each superstep the BFS frontier crosses one interval
	// boundary backwards, so only a couple of intervals are active at a
	// time and edges read must fall far below supersteps * |E|.
	var edges []graph.Edge
	const n = 2000
	for v := graph.VertexID(0); v+1 < n; v++ {
		edges = append(edges, graph.Edge{Src: v + 1, Dst: v})
	}
	g, err := graph.FromEdges(edges, n, false)
	if err != nil {
		t.Fatal(err)
	}
	prog := algorithms.ChiBFS{Root: n - 1}
	l := shard(t, g, 8, prog.EdgeInit)
	e, err := graphchi.NewEngine(l, prog, graphchi.Config{MaxSupersteps: n + 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("path BFS did not converge")
	}
	if res.Supersteps < 5 {
		t.Fatalf("expected the frontier to need several supersteps, got %d", res.Supersteps)
	}
	full := int64(res.Supersteps) * g.NumEdges
	if res.EdgesRead >= full/2 {
		t.Fatalf("read %d edges over %d supersteps; selective scheduling should beat %d",
			res.EdgesRead, res.Supersteps, full/2)
	}
	for v := int64(0); v < n; v++ {
		if e.Value(v) != uint64(n-1-v) {
			t.Fatalf("path vertex %d: level %d, want %d", v, e.Value(v), n-1-v)
		}
	}
}

func TestSingleShardDegenerateCase(t *testing.T) {
	g := rmat(t, 50, 200, 5).Symmetrize()
	l := shard(t, g, 1, algorithms.ChiCC{}.EdgeInit)
	e, err := graphchi.NewEngine(l, algorithms.ChiCC{}, graphchi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := algorithms.TrueComponents(g)
	for v := int64(0); v < g.NumVertices; v++ {
		if e.Value(v) != uint64(want[v]) {
			t.Fatalf("vertex %d mismatch", v)
		}
	}
}

func TestParallelUpdatesMatchSequential(t *testing.T) {
	// GraphChi's multithreaded rule: vertices without intra-interval
	// edges may update in parallel with no observable difference.
	g := rmat(t, 500, 3000, 7).Symmetrize()
	run := func(par int) []uint64 {
		l := shard(t, g, 4, algorithms.ChiCC{}.EdgeInit)
		e, err := graphchi.NewEngine(l, algorithms.ChiCC{}, graphchi.Config{MaxSupersteps: 300, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("parallelism %d did not converge", par)
		}
		return e.Values()
	}
	seq := run(1)
	for _, par := range []int{2, 8} {
		got := run(par)
		for v := range seq {
			if got[v] != seq[v] {
				t.Fatalf("parallelism %d: vertex %d = %d, sequential %d", par, v, got[v], seq[v])
			}
		}
	}
}

func TestParallelPageRankDeterministic(t *testing.T) {
	// Even float programs are deterministic here: parallel-safe vertices
	// don't share records, so each vertex's input set is fixed.
	g := rmat(t, 200, 1200, 8)
	prog := algorithms.ChiPageRank{}
	run := func(par int) []uint64 {
		l := shard(t, g, 3, prog.EdgeInit)
		e, err := graphchi.NewEngine(l, prog, graphchi.Config{MaxSupersteps: 10, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Values()
	}
	a, b := run(1), run(4)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("vertex %d: parallel PageRank diverged bit-wise", v)
		}
	}
}

func TestEdgeValuesPersistAcrossEngines(t *testing.T) {
	// Edge values live in the shard files: a second engine over the same
	// layout sees the values the first one wrote (GraphChi's on-disk
	// state model).
	g := rmat(t, 100, 400, 6)
	prog := algorithms.ChiPageRank{}
	l := shard(t, g, 2, prog.EdgeInit)
	e1, err := graphchi.NewEngine(l, prog, graphchi.Config{MaxSupersteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	v1 := e1.Values()

	// Continue for 3 more supersteps in a fresh engine; compare with a
	// single 6-superstep run on freshly sharded data.
	e2, err := graphchi.NewEngine(l, prog, graphchi.Config{MaxSupersteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	l3 := shard(t, g, 2, prog.EdgeInit)
	e3, err := graphchi.NewEngine(l3, prog, graphchi.Config{MaxSupersteps: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e3.Run(); err != nil {
		t.Fatal(err)
	}
	// e2 re-initialized vertex values but read e1's edge values, so after
	// one superstep its ranks rebuild from the persisted contributions;
	// by superstep 3 it matches the continuous run closely.
	for v := int64(0); v < g.NumVertices; v++ {
		a := math.Float64frombits(e2.Value(v))
		b := math.Float64frombits(e3.Value(v))
		if math.Abs(a-b) > 1e-6*(1+math.Abs(b)) {
			t.Fatalf("vertex %d: resumed %g, continuous %g (first run gave %g)",
				v, a, b, math.Float64frombits(v1[v]))
		}
	}
}
