// Package graphchi is a faithful-in-structure reimplementation of the
// GraphChi baseline the paper compares against (Kyrola et al., OSDI'12):
// a disk-based, vertex-centric engine built on Parallel Sliding Windows
// (PSW).
//
// The graph is preprocessed into P intervals of vertices and P shards:
// shard s holds every edge whose destination lies in interval s, sorted
// by source vertex, with a mutable 64-bit value attached to each edge
// (GraphChi communicates through edge values, not messages). One
// superstep executes the intervals in order; for interval i the engine
//
//  1. loads shard i entirely (the "memory shard", containing interval
//     i's in-edges),
//  2. reads, from every other shard j, the sliding window of edges whose
//     source lies in interval i (interval i's out-edges — contiguous
//     because shards are source-sorted),
//  3. runs the vertex update function for each scheduled vertex of the
//     interval, reading in-edge values and writing out-edge values, and
//  4. writes the memory shard and the dirty windows back to disk.
//
// Like the original, the engine maintains a selective-scheduling bitmap,
// so BFS- and CC-style programs touch only active intervals' edges, and
// it performs all shard I/O with plain sequential reads/writes — the
// design optimizes disk traffic, not CPU parallelism, which is exactly
// the behaviour the paper's Fig. 11 observes (lowest CPU utilization of
// the three systems).
package graphchi
