package buildinfo

import (
	"runtime/debug"
	"strings"
	"testing"
)

func TestReadMissingBuildInfo(t *testing.T) {
	info := read(nil, false)
	if info.Version != "dev" || info.Revision != "unknown" {
		t.Fatalf("fallback info = %+v", info)
	}
	if info.GoVersion == "" {
		t.Fatal("fallback info has empty GoVersion")
	}
}

func TestReadExtractsVCS(t *testing.T) {
	bi := &debug.BuildInfo{
		GoVersion: "go1.24.0",
		Main:      debug.Module{Version: "(devel)"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123456789abcdef01234567"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	info := read(bi, true)
	if info.Revision != "0123456789ab+dirty" {
		t.Fatalf("revision = %q", info.Revision)
	}
	if info.Version != "(devel)" || info.GoVersion != "go1.24.0" {
		t.Fatalf("info = %+v", info)
	}
}

func TestVersionOneLine(t *testing.T) {
	v := Version()
	if v == "" || strings.Contains(v, "\n") {
		t.Fatalf("Version() = %q, want one non-empty line", v)
	}
	if !strings.Contains(v, Get().Revision) {
		t.Fatalf("Version() %q does not carry the revision %q", v, Get().Revision)
	}
}
