// Package buildinfo exposes the module version and VCS revision baked
// into the binary by the go toolchain, so every cmd/* binary can answer
// -version and machine-readable reports (BENCH_<rev>.json, gpsa-lint
// -json) can stamp the revision they were produced from.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info describes the running binary.
type Info struct {
	// Version is the main module version ("(devel)" for source builds,
	// "dev" when build info is unavailable, e.g. some test binaries).
	Version string
	// Revision is the short VCS revision the binary was built from,
	// "unknown" when the toolchain recorded none. A "+dirty" suffix
	// marks uncommitted changes.
	Revision string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
}

// read extracts Info from debug.ReadBuildInfo; split out so tests can
// feed synthetic build info.
func read(bi *debug.BuildInfo, ok bool) Info {
	info := Info{Version: "dev", Revision: "unknown", GoVersion: runtime.Version()}
	if !ok || bi == nil {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if dirty {
			rev += "+dirty"
		}
		info.Revision = rev
	}
	return info
}

// Get returns the binary's build information.
func Get() Info { return read(debug.ReadBuildInfo()) }

// Version returns "<module version> (<revision>, <go version>)" — the
// one-line answer behind every binary's -version flag.
func Version() string {
	i := Get()
	return fmt.Sprintf("%s (%s, %s)", i.Version, i.Revision, i.GoVersion)
}

// Revision returns the short VCS revision, or "unknown".
func Revision() string { return Get().Revision }
