// Package algorithms implements the paper's three evaluation workloads —
// PageRank, breadth-first search, and connected components — plus
// extensions (SSSP, in-degree, delta PageRank), each as a vertex program
// for the GPSA engine and, where the baselines are compared, as programs
// for the GraphChi-style and X-Stream-style engines.
//
// PageRank semantics note: GPSA (and this package's PageRank for all
// three engines) computes the paper's *message-driven* PageRank — a
// vertex recomputes only when it receives messages, and vertices that
// stop updating stop contributing. This is what the paper's genMsg/
// compute pseudo-code describes and what its timing experiments run; it
// is not exact power iteration. DeltaPageRank is the numerically
// convergent variant and is verified against true power iteration.
package algorithms
