package algorithms

import (
	"container/heap"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// ReferenceRun executes a vertex program serially with the exact
// semantics of the GPSA engine (dispatch fresh vertices, fold messages
// with the first-message rule, selective scheduling), in deterministic
// vertex/edge order. It is the oracle the concurrent engines are tested
// against. It returns the final payloads and the number of supersteps
// executed.
func ReferenceRun(g *graph.CSR, p core.Program, maxSteps int) ([]uint64, int) {
	n := g.NumVertices
	vals := make([]uint64, n)  // newest committed payloads
	active := make([]bool, n)  // fresh: dispatch this superstep
	upd := make([]uint64, n)   // update-column accumulator
	touched := make([]bool, n) // first-message detector
	for v := int64(0); v < n; v++ {
		vals[v], active[v] = p.Init(v)
	}
	steps := 0
	for ; steps < maxSteps; steps++ {
		var messages, updates int64
		for i := range touched {
			touched[i] = false
		}
		for v := int64(0); v < n; v++ {
			if !active[v] {
				continue
			}
			deg := g.OutDegree(graph.VertexID(v))
			ws := g.EdgeWeights(graph.VertexID(v))
			for i, dst := range g.Neighbors(graph.VertexID(v)) {
				var w float32
				if ws != nil {
					w = ws[i]
				}
				msgVal, send := p.GenMsg(v, vals[v], deg, dst, w)
				if !send {
					continue
				}
				messages++
				d := int64(dst)
				first := !touched[d]
				cur := vals[d]
				if !first {
					cur = upd[d]
				}
				nv, changed := p.Compute(d, cur, msgVal, first)
				if changed {
					upd[d] = nv
					touched[d] = true
					updates++
				}
			}
		}
		for v := int64(0); v < n; v++ {
			active[v] = touched[v]
			if touched[v] {
				vals[v] = upd[v]
			}
		}
		if messages == 0 && updates == 0 {
			break
		}
	}
	return vals, steps
}

// TruePageRank runs iters rounds of synchronous power iteration in the
// same unnormalized, 1-centered formulation as PageRank (every vertex
// recomputes every round, dangling mass is dropped).
func TruePageRank(g *graph.CSR, damping float64, iters int) []float64 {
	if damping == 0 {
		damping = 0.85
	}
	n := g.NumVertices
	rank := make([]float64, n)
	next := make([]float64, n)
	for v := range rank {
		rank[v] = 1
	}
	for it := 0; it < iters; it++ {
		for v := range next {
			next[v] = 0
		}
		for v := int64(0); v < n; v++ {
			deg := g.OutDegree(graph.VertexID(v))
			if deg == 0 {
				continue
			}
			share := rank[v] / float64(deg)
			for _, dst := range g.Neighbors(graph.VertexID(v)) {
				next[dst] += share
			}
		}
		for v := range next {
			next[v] = (1 - damping) + damping*next[v]
		}
		rank, next = next, rank
	}
	return rank
}

// TrueBFS returns hop distances from root (-1 for unreached vertices)
// computed with a plain queue.
func TrueBFS(g *graph.CSR, root graph.VertexID) []int64 {
	dist := make([]int64, g.NumVertices)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := []graph.VertexID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range g.Neighbors(v) {
			if dist[d] == -1 {
				dist[d] = dist[v] + 1
				queue = append(queue, d)
			}
		}
	}
	return dist
}

// TrueComponents returns, for every vertex, the smallest vertex id in its
// weakly connected component, via union-find.
func TrueComponents(g *graph.CSR) []graph.VertexID {
	parent := make([]graph.VertexID, g.NumVertices)
	for i := range parent {
		parent[i] = graph.VertexID(i)
	}
	var find func(x graph.VertexID) graph.VertexID
	find = func(x graph.VertexID) graph.VertexID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b graph.VertexID) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb { // keep the smaller id as the root
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := int64(0); v < g.NumVertices; v++ {
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			union(graph.VertexID(v), d)
		}
	}
	out := make([]graph.VertexID, g.NumVertices)
	for v := range out {
		out[v] = find(graph.VertexID(v))
	}
	return out
}

// TrueSSSP returns shortest-path distances from src using Dijkstra over
// |weight| (matching SSSP.GenMsg's clamp). Unreached vertices get +Inf.
func TrueSSSP(g *graph.CSR, src graph.VertexID) []float64 {
	dist := make([]float64, g.NumVertices)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &vertexHeap{items: []heapItem{{v: src, d: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.d > dist[it.v] {
			continue
		}
		ws := g.EdgeWeights(it.v)
		for i, nb := range g.Neighbors(it.v) {
			var w float64
			if ws != nil {
				w = math.Abs(float64(ws[i]))
			}
			if nd := it.d + w; nd < dist[nb] {
				dist[nb] = nd
				heap.Push(pq, heapItem{v: nb, d: nd})
			}
		}
	}
	return dist
}

type heapItem struct {
	v graph.VertexID
	d float64
}

type vertexHeap struct{ items []heapItem }

func (h *vertexHeap) Len() int           { return len(h.items) }
func (h *vertexHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *vertexHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *vertexHeap) Push(x any)         { h.items = append(h.items, x.(heapItem)) }
func (h *vertexHeap) Pop() any {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
