package algorithms

import (
	"math"

	"repro/internal/graph"
	"repro/internal/vertexfile"
)

// Unreached is the BFS/CC "infinity" payload (all 63 payload bits set).
const Unreached = vertexfile.PayloadMask

// BFS computes hop distances from Root (the paper's bfs workload): only
// the root starts active, and a vertex adopts the smallest level offered.
type BFS struct {
	Root graph.VertexID
}

// Init activates the root at level 0; everything else is unreached.
func (b BFS) Init(v int64) (uint64, bool) {
	if v == int64(b.Root) {
		return 0, true
	}
	return Unreached, false
}

// GenMsg offers level+1 to each neighbor.
func (b BFS) GenMsg(src int64, payload uint64, outDegree uint32, dst graph.VertexID, weight float32) (uint64, bool) {
	return payload + 1, true
}

// Compute keeps the minimum level.
func (b BFS) Compute(dst int64, cur uint64, msg uint64, first bool) (uint64, bool) {
	if msg < cur {
		return msg, true
	}
	return cur, false
}

// CombineMsg merges two level offers by minimum.
func (b BFS) CombineMsg(a, c uint64) uint64 {
	if a < c {
		return a
	}
	return c
}

// ConnectedComponents labels every vertex with the smallest vertex id in
// its component (the paper's CC workload). Run it on a symmetrized graph
// for weakly connected components.
type ConnectedComponents struct{}

// Init labels each vertex with itself, active.
func (ConnectedComponents) Init(v int64) (uint64, bool) { return uint64(v), true }

// GenMsg offers the current label to each neighbor.
func (ConnectedComponents) GenMsg(src int64, payload uint64, outDegree uint32, dst graph.VertexID, weight float32) (uint64, bool) {
	return payload, true
}

// Compute keeps the minimum label.
func (ConnectedComponents) Compute(dst int64, cur uint64, msg uint64, first bool) (uint64, bool) {
	if msg < cur {
		return msg, true
	}
	return cur, false
}

// CombineMsg merges two label offers by minimum.
func (ConnectedComponents) CombineMsg(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// SSSP computes single-source shortest paths over edge weights (an
// extension beyond the paper's workloads; it exercises the weighted CSR
// format). Distances are float64 payloads; unreached is +Inf.
type SSSP struct {
	Source graph.VertexID
}

// Init activates the source at distance 0.
func (s SSSP) Init(v int64) (uint64, bool) {
	if v == int64(s.Source) {
		return math.Float64bits(0), true
	}
	return math.Float64bits(math.Inf(1)), false
}

// GenMsg offers dist+weight. Negative weights are rejected by preprocess;
// a defensive clamp keeps the payload non-negative regardless.
func (s SSSP) GenMsg(src int64, payload uint64, outDegree uint32, dst graph.VertexID, weight float32) (uint64, bool) {
	d := math.Float64frombits(payload) + math.Abs(float64(weight))
	return math.Float64bits(d), true
}

// Compute keeps the minimum distance.
func (s SSSP) Compute(dst int64, cur uint64, msg uint64, first bool) (uint64, bool) {
	if math.Float64frombits(msg) < math.Float64frombits(cur) {
		return msg, true
	}
	return cur, false
}

// CombineMsg merges two distance offers by minimum (non-negative float64
// bit patterns order like the floats themselves).
func (s SSSP) CombineMsg(a, b uint64) uint64 {
	if math.Float64frombits(a) < math.Float64frombits(b) {
		return a
	}
	return b
}

// DistOf decodes an SSSP payload.
func DistOf(payload uint64) float64 { return math.Float64frombits(payload) }

// InDegree counts each vertex's in-degree in a single superstep (run
// with MaxSupersteps == 1).
type InDegree struct{}

// Init starts every vertex at zero, active.
func (InDegree) Init(v int64) (uint64, bool) { return 0, true }

// GenMsg sends 1 along every edge.
func (InDegree) GenMsg(src int64, payload uint64, outDegree uint32, dst graph.VertexID, weight float32) (uint64, bool) {
	return 1, true
}

// Compute sums the incoming ones.
func (InDegree) Compute(dst int64, cur uint64, msg uint64, first bool) (uint64, bool) {
	if first {
		return msg, true
	}
	return cur + msg, true
}
