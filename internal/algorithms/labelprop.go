package algorithms

import (
	"repro/internal/graph"
)

// LabelPropagation is a semi-synchronous community-detection extension
// (beyond the paper's workloads): every vertex starts in its own
// community and repeatedly adopts the smallest community label among the
// offers it receives, but — unlike ConnectedComponents — an offer is only
// accepted from a neighbor whose label is at most Rounds hops of
// propagation old, bounding how far labels bleed. With Rounds large it
// degenerates to connected components; with small Rounds it yields local
// communities.
//
// Payload layout: label (low 32 bits) | remaining TTL (next 16 bits).
type LabelPropagation struct {
	// Rounds is the label time-to-live (default 3).
	Rounds uint16
}

func (l LabelPropagation) rounds() uint64 {
	if l.Rounds == 0 {
		return 3
	}
	return uint64(l.Rounds)
}

func lpPack(label uint64, ttl uint64) uint64 { return label&0xFFFFFFFF | ttl<<32 }
func lpLabel(p uint64) uint64                { return p & 0xFFFFFFFF }
func lpTTL(p uint64) uint64                  { return (p >> 32) & 0xFFFF }

// LPLabelOf decodes the community label from a payload.
func LPLabelOf(payload uint64) graph.VertexID { return graph.VertexID(lpLabel(payload)) }

// Init assigns every vertex its own community with a full TTL.
func (l LabelPropagation) Init(v int64) (uint64, bool) {
	return lpPack(uint64(v), l.rounds()), true
}

// GenMsg offers the label with a decremented TTL; exhausted labels stop
// propagating.
func (l LabelPropagation) GenMsg(src int64, payload uint64, outDegree uint32, dst graph.VertexID, weight float32) (uint64, bool) {
	ttl := lpTTL(payload)
	if ttl == 0 {
		return 0, false
	}
	return lpPack(lpLabel(payload), ttl-1), true
}

// Compute adopts a strictly smaller label (the TTL rides along with it).
func (l LabelPropagation) Compute(dst int64, cur uint64, msg uint64, first bool) (uint64, bool) {
	if lpLabel(msg) < lpLabel(cur) {
		return msg, true
	}
	return cur, false
}
