package algorithms_test

import (
	"testing"
	"testing/quick"

	"repro/internal/algorithms"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graphchi"
	"repro/internal/mmap"
	"repro/internal/vertexfile"
	"repro/internal/xstream"
)

// runGPSA executes prog on the single-machine engine and returns payloads.
func runGPSA(t *testing.T, g *graph.CSR, prog core.Program) []uint64 {
	t.Helper()
	dir := t.TempDir()
	gpath := dir + "/g.gpsa"
	if err := graph.WriteFile(gpath, g); err != nil {
		t.Fatal(err)
	}
	gf, err := graph.OpenFile(gpath, mmap.ModeAuto)
	if err != nil {
		t.Fatal(err)
	}
	defer gf.Close()
	vf, err := vertexfile.Create(dir+"/v.gpvf", g.NumVertices, prog.Init)
	if err != nil {
		t.Fatal(err)
	}
	defer vf.Close()
	eng, err := core.New(gf, vf, prog, core.Config{Dispatchers: 2, Computers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return vf.Values()
}

// runXS executes prog on the X-Stream baseline.
func runXS(t *testing.T, g *graph.CSR, prog core.Program) []uint64 {
	t.Helper()
	l, err := xstream.Preprocess(g, t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := xstream.NewEngine(l, prog, xstream.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e.Values()
}

// runCluster executes prog on the distributed engine.
func runCluster(t *testing.T, g *graph.CSR, prog core.Program) []uint64 {
	t.Helper()
	gpath := t.TempDir() + "/g.gpsa"
	if err := graph.WriteFile(gpath, g); err != nil {
		t.Fatal(err)
	}
	_, values, err := cluster.Run(gpath, prog, cluster.Config{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	return values
}

// TestFourEnginesAgreeOnCC is the cross-engine equivalence property: for
// random graphs, the GPSA engine, the X-Stream baseline, the distributed
// cluster, the GraphChi baseline, and the serial reference all produce
// identical component labels.
func TestFourEnginesAgreeOnCC(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	fn := func(seed int64, vRaw uint8, eRaw uint16) bool {
		v := int64(vRaw%60) + 2
		e := int64(eRaw % 500)
		base, err := gen.RMATGraph(gen.RMATConfig{Vertices: v, Edges: e, Seed: seed})
		if err != nil {
			return false
		}
		g := base.Symmetrize()
		want, _ := algorithms.ReferenceRun(g, algorithms.ConnectedComponents{}, 200)

		gpsaVals := runGPSA(t, g, algorithms.ConnectedComponents{})
		xsVals := runXS(t, g, algorithms.ConnectedComponents{})
		clVals := runCluster(t, g, algorithms.ConnectedComponents{})

		chiLayout, err := graphchi.Shard(g, t.TempDir(), 3, algorithms.ChiCC{}.EdgeInit)
		if err != nil {
			return false
		}
		chi, err := graphchi.NewEngine(chiLayout, algorithms.ChiCC{}, graphchi.Config{MaxSupersteps: 500})
		if err != nil {
			return false
		}
		if _, err := chi.Run(); err != nil {
			return false
		}

		for x := int64(0); x < v; x++ {
			w := want[x]
			if gpsaVals[x] != w || xsVals[x] != w || clVals[x] != w || chi.Value(x) != w {
				t.Logf("vertex %d: ref=%d gpsa=%d xs=%d cluster=%d chi=%d",
					x, w, gpsaVals[x], xsVals[x], clVals[x], chi.Value(x))
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestEnginesAgreeOnBFS does the same for BFS levels on directed graphs
// (GraphChi excluded: its edge-value semantics converge to the same fixed
// point but its per-superstep trace differs, covered by its own tests).
func TestEnginesAgreeOnBFS(t *testing.T) {
	fn := func(seed int64, vRaw uint8, eRaw uint16) bool {
		v := int64(vRaw%60) + 2
		e := int64(eRaw % 500)
		g, err := gen.RMATGraph(gen.RMATConfig{Vertices: v, Edges: e, Seed: seed})
		if err != nil {
			return false
		}
		prog := algorithms.BFS{Root: 0}
		want, _ := algorithms.ReferenceRun(g, prog, 300)
		gpsaVals := runGPSA(t, g, prog)
		xsVals := runXS(t, g, prog)
		for x := int64(0); x < v; x++ {
			w := want[x] & vertexfile.PayloadMask
			if gpsaVals[x] != w || xsVals[x] != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
