package algorithms_test

import (
	"math"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/gen"
	"repro/internal/graph"
)

// save writes g to a temp CSR file and returns its path.
func save(t testing.TB, g *graph.CSR) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.gpsa")
	if err := graph.WriteFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func testGraph(t testing.TB, seed int64) *graph.CSR {
	t.Helper()
	g, err := gen.RMATGraph(gen.RMATConfig{Vertices: 500, Edges: 3000, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSMatchesTrueBFS(t *testing.T) {
	g := testGraph(t, 1)
	path := save(t, g)
	levels, res, err := gpsa.BFS(path, 0, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("BFS did not converge")
	}
	want := algorithms.TrueBFS(g, 0)
	for v := range want {
		if levels[v] != want[v] {
			t.Fatalf("vertex %d: level %d, want %d", v, levels[v], want[v])
		}
	}
}

func TestBFSFromEveryRootOnSmallGraph(t *testing.T) {
	g, err := graph.FromEdges([]graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 2, Dst: 3}, {Src: 4, Dst: 0},
	}, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	path := save(t, g)
	for root := graph.VertexID(0); root < 5; root++ {
		levels, _, err := gpsa.BFS(path, root, gpsa.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := algorithms.TrueBFS(g, root)
		for v := range want {
			if levels[v] != want[v] {
				t.Fatalf("root %d, vertex %d: level %d, want %d", root, v, levels[v], want[v])
			}
		}
	}
}

func TestComponentsMatchUnionFind(t *testing.T) {
	g := testGraph(t, 2).Symmetrize()
	path := save(t, g)
	labels, res, err := gpsa.Components(path, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("CC did not converge")
	}
	want := algorithms.TrueComponents(g)
	for v := range want {
		if labels[v] != want[v] {
			t.Fatalf("vertex %d: label %d, want %d", v, labels[v], want[v])
		}
	}
}

func TestComponentsManyIslands(t *testing.T) {
	// 10 disjoint 3-cycles: every vertex must adopt its cycle's minimum.
	var edges []graph.Edge
	for k := graph.VertexID(0); k < 10; k++ {
		a, b, c := 3*k, 3*k+1, 3*k+2
		edges = append(edges,
			graph.Edge{Src: a, Dst: b},
			graph.Edge{Src: b, Dst: c},
			graph.Edge{Src: c, Dst: a})
	}
	g, err := graph.FromEdges(edges, 30, false)
	if err != nil {
		t.Fatal(err)
	}
	labels, _, err := gpsa.Components(save(t, g.Symmetrize()), gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for v := graph.VertexID(0); v < 30; v++ {
		if labels[v] != (v/3)*3 {
			t.Fatalf("vertex %d: label %d, want %d", v, labels[v], (v/3)*3)
		}
	}
}

func TestPageRankMatchesReferenceSemantics(t *testing.T) {
	g := testGraph(t, 3)
	ranks, _, err := gpsa.PageRank(save(t, g), gpsa.RunOptions{Supersteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := algorithms.ReferenceRun(g, algorithms.PageRank{}, 5)
	for v := range ranks {
		ref := algorithms.RankOf(want[v])
		if math.Abs(ranks[v]-ref) > 1e-9*(1+ref) {
			t.Fatalf("vertex %d: rank %g, want %g", v, ranks[v], ref)
		}
	}
}

func TestPageRankMassIsPlausible(t *testing.T) {
	// On a graph where every vertex has out-edges and in-edges, 5
	// supersteps of message-driven PR track power iteration closely.
	var edges []graph.Edge
	const n = 100
	for v := graph.VertexID(0); v < n; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: (v + 1) % n}, graph.Edge{Src: v, Dst: (v + 7) % n})
	}
	g, err := graph.FromEdges(edges, n, false)
	if err != nil {
		t.Fatal(err)
	}
	ranks, _, err := gpsa.PageRank(save(t, g), gpsa.RunOptions{Supersteps: 30})
	if err != nil {
		t.Fatal(err)
	}
	truth := algorithms.TruePageRank(g, 0.85, 30)
	for v := range ranks {
		if math.Abs(ranks[v]-truth[v]) > 1e-6 {
			t.Fatalf("vertex %d: rank %g, power iteration %g", v, ranks[v], truth[v])
		}
	}
}

func TestDeltaPageRankConvergesToTruePageRank(t *testing.T) {
	g := testGraph(t, 4)
	ranks, res, err := gpsa.DeltaPageRank(save(t, g), 1e-5, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("delta PageRank did not converge in %d supersteps", res.Supersteps)
	}
	truth := algorithms.TruePageRank(g, 0.85, 200)
	for v := range ranks {
		if math.Abs(ranks[v]-truth[v]) > 1e-2*(1+truth[v]) {
			t.Fatalf("vertex %d: rank %g, power iteration %g", v, ranks[v], truth[v])
		}
	}
}

func TestPageRankEpsilonConvergence(t *testing.T) {
	// An irregular graph where every vertex has in- and out-edges (so the
	// message-driven semantics coincide with power iteration) but degrees
	// vary, making the ranks genuinely non-uniform: the run must halt
	// well before the superstep cap with a shrinking aggregate.
	var edges []graph.Edge
	const n = 200
	for v := graph.VertexID(0); v < n; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: (v + 1) % n})
		if v%3 == 0 {
			edges = append(edges, graph.Edge{Src: v, Dst: (v*7 + 3) % n})
		}
		if v%5 == 0 {
			edges = append(edges, graph.Edge{Src: v, Dst: (v*11 + 1) % n})
		}
	}
	g, err := graph.FromEdges(edges, n, false)
	if err != nil {
		t.Fatal(err)
	}
	path := save(t, g)

	var aggs []float64
	vals, res, err := gpsa.Run(path, algorithms.PageRank{Epsilon: 1e-6}, gpsa.RunOptions{
		Supersteps: 500,
		Progress:   func(s gpsa.StepStats) { aggs = append(aggs, s.Aggregate) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vals.Close()
	if !res.Converged {
		t.Fatal("epsilon PageRank did not converge")
	}
	if res.Supersteps >= 500 || res.Supersteps < 5 {
		t.Fatalf("converged after %d supersteps; expected a moderate count", res.Supersteps)
	}
	if last := aggs[len(aggs)-1]; last >= 1e-6 {
		t.Fatalf("final aggregate %g not below epsilon", last)
	}
	if aggs[0] <= aggs[len(aggs)-1] {
		t.Fatalf("aggregate did not shrink: first %g, last %g", aggs[0], aggs[len(aggs)-1])
	}
	// The converged ranks must match long power iteration closely.
	truth := algorithms.TruePageRank(g, 0.85, 300)
	for v := int64(0); v < n; v++ {
		got := algorithms.RankOf(vals.Raw(v))
		if math.Abs(got-truth[v]) > 1e-4*(1+truth[v]) {
			t.Fatalf("vertex %d: rank %g, want %g", v, got, truth[v])
		}
	}
}

func TestPageRankZeroEpsilonRunsFullBudget(t *testing.T) {
	g := testGraph(t, 8)
	_, res, err := gpsa.Run(save(t, g), algorithms.PageRank{}, gpsa.RunOptions{Supersteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 4 || res.Converged {
		t.Fatalf("supersteps=%d converged=%v; want full budget", res.Supersteps, res.Converged)
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	edges, err := gen.RMAT(gen.RMATConfig{Vertices: 200, Edges: 1500, Seed: 5, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(edges, 200, true)
	if err != nil {
		t.Fatal(err)
	}
	dists, res, err := gpsa.SSSP(save(t, g), 0, gpsa.RunOptions{Supersteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("SSSP did not converge")
	}
	want := algorithms.TrueSSSP(g, 0)
	for v := range want {
		if gpsa.Unreachable(want[v]) != gpsa.Unreachable(dists[v]) {
			t.Fatalf("vertex %d: reachability mismatch (%g vs %g)", v, dists[v], want[v])
		}
		if !gpsa.Unreachable(want[v]) && math.Abs(dists[v]-want[v]) > 1e-5*(1+want[v]) {
			t.Fatalf("vertex %d: dist %g, want %g", v, dists[v], want[v])
		}
	}
}

func TestInDegreeCountsEdges(t *testing.T) {
	g := testGraph(t, 6)
	vals, _, err := gpsa.Run(save(t, g), algorithms.InDegree{}, gpsa.RunOptions{Supersteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer vals.Close()
	want := make([]uint64, g.NumVertices)
	for v := int64(0); v < g.NumVertices; v++ {
		for _, d := range g.Neighbors(graph.VertexID(v)) {
			want[d]++
		}
	}
	for v := int64(0); v < g.NumVertices; v++ {
		got := vals.Uint(v)
		if want[v] == 0 {
			// Vertices with no in-edges keep their init payload 0.
			if got != 0 {
				t.Fatalf("vertex %d: in-degree %d, want 0", v, got)
			}
			continue
		}
		if got != want[v] {
			t.Fatalf("vertex %d: in-degree %d, want %d", v, got, want[v])
		}
	}
}

func TestBFSUnreachedStaysUnreached(t *testing.T) {
	g, err := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}}, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	levels, _, err := gpsa.BFS(save(t, g), 0, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if levels[2] != -1 {
		t.Fatalf("isolated vertex level = %d, want -1", levels[2])
	}
}

func TestReferenceRunConvergesAndReportsSteps(t *testing.T) {
	g := testGraph(t, 7).Symmetrize()
	_, steps := algorithms.ReferenceRun(g, algorithms.ConnectedComponents{}, 100)
	if steps <= 0 || steps >= 100 {
		t.Fatalf("reference CC ran %d steps", steps)
	}
}
