package algorithms

import (
	"math"

	"repro/internal/graph"
	"repro/internal/graphchi"
)

// GraphChi-style programs communicate through edge values rather than
// messages; each algorithm therefore has a paired EdgeInit used at
// sharding time.

// ChiPageRank is GraphChi's PageRank: new = (1-d) + d * Σ in-edge values,
// with rank/outDegree written to every out-edge. Unlike the message-driven
// GPSA variant, stale contributions persist on edges, so this is a Jacobi
// iteration that converges to the true (1-centered) PageRank.
type ChiPageRank struct {
	Damping float64
}

func (p ChiPageRank) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

// EdgeInit seeds edges with the initial contribution 1/deg.
func (p ChiPageRank) EdgeInit(src int64, outDeg uint32, dst graph.VertexID, weight float32) uint64 {
	if outDeg == 0 {
		return math.Float64bits(0)
	}
	return math.Float64bits(1 / float64(outDeg))
}

// InitVertex schedules every vertex at rank 1.
func (p ChiPageRank) InitVertex(v int64) (uint64, bool) { return math.Float64bits(1), true }

// Update recomputes the rank and refreshes out-edge contributions.
func (p ChiPageRank) Update(v *graphchi.Vertex) bool {
	d := p.damping()
	sum := 0.0
	for i := 0; i < v.NumIn(); i++ {
		sum += math.Float64frombits(v.InVal(i))
	}
	rank := (1 - d) + d*sum
	v.SetValue(math.Float64bits(rank))
	if n := v.NumOut(); n > 0 {
		share := math.Float64bits(rank / float64(n))
		for i := 0; i < n; i++ {
			v.SetOutVal(i, share)
		}
	}
	return true // PageRank schedules everything every iteration
}

// ChiBFS propagates hop levels through edge values.
type ChiBFS struct {
	Root graph.VertexID
}

// EdgeInit seeds edges out of the root with level 1 and everything
// else with Unreached.
func (b ChiBFS) EdgeInit(src int64, outDeg uint32, dst graph.VertexID, weight float32) uint64 {
	if src == int64(b.Root) {
		return 1
	}
	return Unreached
}

// InitVertex schedules every vertex once (the first superstep then costs
// O(E), after which scheduling is selective — matching GraphChi's BFS).
func (b ChiBFS) InitVertex(v int64) (uint64, bool) {
	if v == int64(b.Root) {
		return 0, true
	}
	return Unreached, true
}

// Update adopts the smallest offered level and advertises level+1;
// neighbors are rescheduled only when an out-edge actually improved.
func (b ChiBFS) Update(v *graphchi.Vertex) bool {
	best := v.Value()
	for i := 0; i < v.NumIn(); i++ {
		if x := v.InVal(i); x < best {
			best = x
		}
	}
	if best < v.Value() {
		v.SetValue(best)
	}
	if v.Value() == Unreached {
		return false
	}
	wrote := false
	offer := v.Value() + 1
	for i := 0; i < v.NumOut(); i++ {
		if v.OutVal(i) > offer {
			v.SetOutVal(i, offer)
			wrote = true
		}
	}
	return wrote
}

// ChiCC propagates minimum component labels through edge values.
type ChiCC struct{}

// EdgeInit seeds each edge with its source's own label.
func (ChiCC) EdgeInit(src int64, outDeg uint32, dst graph.VertexID, weight float32) uint64 {
	return uint64(src)
}

// InitVertex labels each vertex with itself, scheduled.
func (ChiCC) InitVertex(v int64) (uint64, bool) { return uint64(v), true }

// Update adopts the smallest label seen and advertises it.
func (ChiCC) Update(v *graphchi.Vertex) bool {
	best := v.Value()
	for i := 0; i < v.NumIn(); i++ {
		if x := v.InVal(i); x < best {
			best = x
		}
	}
	improved := best < v.Value()
	v.SetValue(best)
	wrote := false
	for i := 0; i < v.NumOut(); i++ {
		if v.OutVal(i) > best {
			v.SetOutVal(i, best)
			wrote = true
		}
	}
	return improved || wrote
}
