package algorithms

import (
	"math/bits"
	"math/rand"

	"repro/internal/graph"
)

// ReachSet estimates graph distances by running up to 62 BFS sources
// simultaneously: each vertex's payload is a bitmask of the sources that
// have reached it, messages OR masks together, and the last superstep
// that changes any vertex equals the eccentricity of the farthest-
// reaching sampled source — a lower bound on the graph's diameter (the
// neighborhood-function technique of HADI/ANF, simplified to exact
// bitmasks). Run on a symmetrized graph for undirected diameter.
type ReachSet struct {
	// Sources are the sampled source vertices (each gets one mask bit,
	// at most 62).
	Sources []graph.VertexID
}

// SampleSources picks k distinct random sources deterministically.
func SampleSources(numVertices int64, k int, seed int64) []graph.VertexID {
	if int64(k) > numVertices {
		k = int(numVertices)
	}
	if k > 62 {
		k = 62
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[graph.VertexID]bool, k)
	out := make([]graph.VertexID, 0, k)
	for len(out) < k {
		v := graph.VertexID(rng.Int63n(numVertices))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Init gives each source its own bit; everything else starts empty.
func (r ReachSet) Init(v int64) (uint64, bool) {
	var mask uint64
	for i, s := range r.Sources {
		if int64(s) == v {
			mask |= 1 << uint(i)
		}
	}
	return mask, mask != 0
}

// GenMsg forwards the reach mask.
func (r ReachSet) GenMsg(src int64, payload uint64, outDegree uint32, dst graph.VertexID, weight float32) (uint64, bool) {
	return payload, true
}

// Compute ORs the masks; a vertex changes only when new sources reach it.
func (r ReachSet) Compute(dst int64, cur uint64, msg uint64, first bool) (uint64, bool) {
	merged := cur | msg
	return merged, merged != cur
}

// CombineMsg ORs masks (OR is the natural combiner here).
func (r ReachSet) CombineMsg(a, b uint64) uint64 { return a | b }

// ReachCount returns how many sampled sources reached the vertex with
// this payload.
func ReachCount(payload uint64) int { return bits.OnesCount64(payload) }

// DiameterFromSteps converts a run's per-superstep update counts into
// the distance estimate: masks travel one hop per superstep, so the last
// superstep that updated any vertex, plus one, is the farthest distance
// reached from a sampled source. Pass the Updates column of the engine's
// Result.Steps (or any equivalent per-superstep series).
func DiameterFromSteps(updatesPerStep []int64) int {
	last := -1
	for i, u := range updatesPerStep {
		if u > 0 {
			last = i
		}
	}
	return last + 1
}

// EstimateDiameter runs ReachSet semantics serially and returns the
// largest hop distance observed from any sampled source — a lower bound
// on the diameter. The engines produce the same value; this serial helper
// is the oracle used in tests and small-scale tooling.
func EstimateDiameter(g *graph.CSR, sources []graph.VertexID) int {
	prog := ReachSet{Sources: sources}
	n := g.NumVertices
	vals := make([]uint64, n)
	active := make([]bool, n)
	for v := int64(0); v < n; v++ {
		vals[v], active[v] = prog.Init(v)
	}
	ecc := 0
	prev := make([]uint64, n) // masks as of the previous superstep: one hop per superstep
	for step := 0; int64(step) < n+1; step++ {
		copy(prev, vals)
		next := make([]bool, n)
		updated := false
		for v := int64(0); v < n; v++ {
			if !active[v] {
				continue
			}
			for _, dst := range g.Neighbors(graph.VertexID(v)) {
				if merged := vals[dst] | prev[v]; merged != vals[dst] {
					vals[dst] = merged
					next[dst] = true
					updated = true
				}
			}
		}
		if !updated {
			break
		}
		ecc = step + 1
		active = next
	}
	return ecc
}
