package algorithms

import (
	"math"

	"repro/internal/graph"
)

// PageRank is the paper's PageRank workload (§IV-E): each superstep a
// fresh vertex sends rank/out-degree along every out-edge, and a vertex
// receiving messages recomputes rank = (1-d) + d * Σ incoming.
//
// Ranks are unnormalized (the "1-centered" formulation GraphChi and
// X-Stream also use): the initial rank is 1 and the damping constant adds
// (1-d) rather than (1-d)/|V|.
type PageRank struct {
	// Damping is the damping factor d; 0 selects the conventional 0.85.
	Damping float64
	// Epsilon, when positive, halts the run once the L1 rank change of a
	// superstep (Σ|new-old| over updated vertices) drops below it, via
	// the engine's aggregator hook. Zero keeps the paper's fixed
	// superstep budget.
	Epsilon float64
}

func (p PageRank) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

// Init starts every vertex at rank 1, active.
func (p PageRank) Init(v int64) (uint64, bool) {
	return math.Float64bits(1.0), true
}

// GenMsg sends rank/outDegree.
func (p PageRank) GenMsg(src int64, payload uint64, outDegree uint32, dst graph.VertexID, weight float32) (uint64, bool) {
	if outDegree == 0 {
		return 0, false
	}
	rank := math.Float64frombits(payload)
	return math.Float64bits(rank / float64(outDegree)), true
}

// Compute accumulates (1-d) + d*Σ msgs.
func (p PageRank) Compute(dst int64, cur uint64, msg uint64, first bool) (uint64, bool) {
	d := p.damping()
	m := math.Float64frombits(msg)
	var rank float64
	if first {
		rank = (1 - d) + d*m
	} else {
		rank = math.Float64frombits(cur) + d*m
	}
	return math.Float64bits(rank), true
}

// CombineMsg merges two rank contributions by summation (valid because
// Compute folds messages additively), enabling dispatcher-side combining.
func (p PageRank) CombineMsg(a, b uint64) uint64 {
	return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
}

// AggInit starts the L1 rank-change aggregate at zero.
func (p PageRank) AggInit() float64 { return 0 }

// AggVertex accumulates |new - old| for an updated vertex.
func (p PageRank) AggVertex(acc float64, v int64, oldPayload, newPayload uint64) float64 {
	return acc + math.Abs(math.Float64frombits(newPayload)-math.Float64frombits(oldPayload))
}

// AggConverged halts once the superstep's total rank change drops below
// Epsilon (never, when Epsilon is zero).
func (p PageRank) AggConverged(step int64, agg float64) bool {
	return p.Epsilon > 0 && agg < p.Epsilon
}

// RankOf decodes a PageRank payload.
func RankOf(payload uint64) float64 { return math.Float64frombits(payload) }

// DeltaPageRank is the incremental (delta-based) PageRank extension: a
// message carries the *change* of a vertex's contribution rather than its
// full rank, so selective scheduling converges to true power-iteration
// PageRank. A vertex stops propagating once its accumulated delta falls
// below Epsilon.
//
// Payload layout: the rank itself, float64 bits. The residual is carried
// entirely in the messages: an update adds d*delta to the rank and
// forwards delta' = d*delta/outDegree.
type DeltaPageRank struct {
	Damping float64
	Epsilon float64 // propagation cut-off; 0 selects 1e-9
}

func (p DeltaPageRank) damping() float64 {
	if p.Damping == 0 {
		return 0.85
	}
	return p.Damping
}

func (p DeltaPageRank) epsilon() float64 {
	if p.Epsilon == 0 {
		return 1e-4 // payloads are float32 pairs; finer cut-offs drown in rounding
	}
	return p.Epsilon
}

// Init starts every vertex at rank 1-d with an equal pending residual:
// every increment of a vertex's rank — including its initial value — must
// be propagated to neighbors exactly once (the push formulation of
// PageRank), and superstep 0 distributes this first increment.
func (p DeltaPageRank) Init(v int64) (uint64, bool) {
	base := float32(1 - p.damping())
	return packPair(base, base), true
}

// GenMsg forwards d*delta/outDegree, suppressing converged residuals.
func (p DeltaPageRank) GenMsg(src int64, payload uint64, outDegree uint32, dst graph.VertexID, weight float32) (uint64, bool) {
	if outDegree == 0 {
		return 0, false
	}
	_, delta := unpackPair(payload)
	if float64(delta) < p.epsilon() {
		return 0, false
	}
	return math.Float64bits(p.damping() * float64(delta) / float64(outDegree)), true
}

// Compute adds incoming deltas to the rank and accumulates the pending
// outgoing residual, which resets at the start of each superstep (first).
func (p DeltaPageRank) Compute(dst int64, cur uint64, msg uint64, first bool) (uint64, bool) {
	rank, delta := unpackPair(cur)
	if first {
		delta = 0
	}
	m := float32(math.Float64frombits(msg))
	return packPair(rank+m, delta+m), true
}

// packPair packs two float32s into the low 62 bits of a payload. The top
// two bits of the rank float are (sign, high exponent bit); ranks are
// non-negative and < 2^128, so bit 63 stays clear.
func packPair(rank, delta float32) uint64 {
	return uint64(math.Float32bits(rank))<<31 | uint64(math.Float32bits(delta))>>1
}

func unpackPair(p uint64) (rank, delta float32) {
	rank = math.Float32frombits(uint32(p >> 31))
	delta = math.Float32frombits(uint32(p<<1) &^ 1)
	return rank, delta
}

// CombineMsg merges two delta contributions by summation.
func (p DeltaPageRank) CombineMsg(a, b uint64) uint64 {
	return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
}

// DeltaRankOf decodes the rank from a DeltaPageRank payload.
func DeltaRankOf(payload uint64) float64 {
	r, _ := unpackPair(payload)
	return float64(r)
}
