package algorithms_test

import (
	"testing"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/graph"
)

// pathGraph builds a symmetric path 0-1-...-(n-1), diameter n-1.
func pathGraph(t *testing.T, n graph.VertexID) *graph.CSR {
	t.Helper()
	var edges []graph.Edge
	for v := graph.VertexID(0); v+1 < n; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: v + 1}, graph.Edge{Src: v + 1, Dst: v})
	}
	g, err := graph.FromEdges(edges, int64(n), false)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSampleSources(t *testing.T) {
	s := algorithms.SampleSources(1000, 10, 1)
	if len(s) != 10 {
		t.Fatalf("%d sources, want 10", len(s))
	}
	seen := map[graph.VertexID]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatalf("duplicate source %d", v)
		}
		seen[v] = true
		if int64(v) >= 1000 {
			t.Fatalf("source %d out of range", v)
		}
	}
	if got := algorithms.SampleSources(5, 100, 1); len(got) != 5 {
		t.Fatalf("oversampling returned %d sources", len(got))
	}
	if got := algorithms.SampleSources(1000, 100, 1); len(got) != 62 {
		t.Fatalf("mask width not clamped: %d sources", len(got))
	}
}

func TestEstimateDiameterPath(t *testing.T) {
	g := pathGraph(t, 10)
	// Sampling the endpoints gives the exact diameter 9.
	if d := algorithms.EstimateDiameter(g, []graph.VertexID{0, 9}); d != 9 {
		t.Fatalf("path diameter estimate = %d, want 9", d)
	}
	// Sampling the middle gives its eccentricity 5 (a lower bound).
	if d := algorithms.EstimateDiameter(g, []graph.VertexID{4}); d != 5 {
		t.Fatalf("middle eccentricity = %d, want 5", d)
	}
}

func TestEstimateDiameterSingletonAndEmpty(t *testing.T) {
	g, err := graph.FromEdges(nil, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if d := algorithms.EstimateDiameter(g, []graph.VertexID{0}); d != 0 {
		t.Fatalf("edgeless diameter = %d, want 0", d)
	}
}

func TestReachSetEngineMatchesSerialEstimate(t *testing.T) {
	g := testGraph(t, 15).Symmetrize()
	sources := algorithms.SampleSources(g.NumVertices, 8, 3)
	want := algorithms.EstimateDiameter(g, sources)

	var updates []int64
	vals, res, err := gpsa.Run(save(t, g), algorithms.ReachSet{Sources: sources}, gpsa.RunOptions{
		Progress: func(s gpsa.StepStats) { updates = append(updates, s.Updates) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vals.Close()
	if !res.Converged {
		t.Fatal("reach set did not converge")
	}
	if got := algorithms.DiameterFromSteps(updates); got != want {
		t.Fatalf("engine estimate %d, serial estimate %d", got, want)
	}
	// Every source must reach itself.
	for i, s := range sources {
		if vals.Raw(int64(s))&(1<<uint(i)) == 0 {
			t.Fatalf("source %d lost its own bit", s)
		}
	}
}

func TestReachCounts(t *testing.T) {
	g := pathGraph(t, 6)
	sources := []graph.VertexID{0, 5}
	vals, _, err := gpsa.Run(save(t, g), algorithms.ReachSet{Sources: sources}, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer vals.Close()
	for v := int64(0); v < 6; v++ {
		if n := algorithms.ReachCount(vals.Raw(v)); n != 2 {
			t.Fatalf("vertex %d reached by %d sources, want 2 (connected path)", v, n)
		}
	}
}
