package algorithms_test

import (
	"testing"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/graph"
)

func TestLabelPropagationTTLBoundsSpread(t *testing.T) {
	// A long path 0-1-2-...-9 (symmetric). With TTL 3, label 0 can only
	// travel 3 hops before dying; vertices beyond keep smaller-of-local
	// labels, never 0.
	var edges []graph.Edge
	for v := graph.VertexID(0); v < 9; v++ {
		edges = append(edges, graph.Edge{Src: v, Dst: v + 1}, graph.Edge{Src: v + 1, Dst: v})
	}
	g, err := graph.FromEdges(edges, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	path := save(t, g)

	vals, res, err := gpsa.Run(path, algorithms.LabelPropagation{Rounds: 3}, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer vals.Close()
	if !res.Converged {
		t.Fatal("label propagation did not converge")
	}
	if l := algorithms.LPLabelOf(vals.Raw(3)); l != 0 {
		t.Fatalf("vertex 3 (within TTL) label = %d, want 0", l)
	}
	if l := algorithms.LPLabelOf(vals.Raw(9)); l == 0 {
		t.Fatal("vertex 9 adopted label 0 despite TTL 3")
	}
}

func TestLabelPropagationLargeTTLEqualsComponents(t *testing.T) {
	g := testGraph(t, 12).Symmetrize()
	path := save(t, g)
	vals, _, err := gpsa.Run(path, algorithms.LabelPropagation{Rounds: 10000}, gpsa.RunOptions{Supersteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	defer vals.Close()
	want := algorithms.TrueComponents(g)
	for v := int64(0); v < g.NumVertices; v++ {
		if algorithms.LPLabelOf(vals.Raw(v)) != want[v] {
			t.Fatalf("vertex %d: label %d, want component %d",
				v, algorithms.LPLabelOf(vals.Raw(v)), want[v])
		}
	}
}

func TestLabelPropagationIsolatedVertexKeepsOwnLabel(t *testing.T) {
	g, err := graph.FromEdges([]graph.Edge{{Src: 0, Dst: 1}}, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := gpsa.Run(save(t, g), algorithms.LabelPropagation{}, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer vals.Close()
	if l := algorithms.LPLabelOf(vals.Raw(2)); l != 2 {
		t.Fatalf("isolated vertex label = %d, want 2", l)
	}
}
