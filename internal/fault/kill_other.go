//go:build !unix

package fault

import "os"

// killSelf approximates SIGKILL where signals are unavailable: exit
// immediately with the conventional 128+9 status and no deferred work.
func killSelf() {
	os.Exit(137)
}
