//go:build unix

package fault

import (
	"os"
	"syscall"
)

// killSelf delivers SIGKILL to the current process. Unlike os.Exit it
// cannot be intercepted and runs no Go runtime shutdown, so mmap'd state
// is left exactly as the kernel last saw it.
func killSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck
	// SIGKILL is not synchronous with the syscall return; block until
	// delivery rather than letting execution continue past the site.
	select {}
}
