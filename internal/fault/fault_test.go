package fault

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Deactivate()
	if Enabled() {
		t.Fatal("Enabled() = true with no plan")
	}
	if f := Hit(SiteComputerMsg); f != nil {
		t.Fatalf("Hit fired with no plan: %v", f)
	}
	if err := Error(SiteMmapSync); err != nil {
		t.Fatalf("Error fired with no plan: %v", err)
	}
	Panic(SiteActorExecute) // must not panic
	Stall(SiteConnStall)    // must not sleep
}

func TestAfterAndCount(t *testing.T) {
	plan := NewPlan(0, Injection{Site: "x", After: 3, Count: 2})
	Activate(plan)
	defer Deactivate()

	var fired []int
	for i := 1; i <= 6; i++ {
		if Hit("x") != nil {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 4 {
		t.Fatalf("fired on hits %v, want [3 4]", fired)
	}
	if plan.Hits("x") != 6 || plan.Fired("x") != 2 {
		t.Fatalf("Hits=%d Fired=%d, want 6/2", plan.Hits("x"), plan.Fired("x"))
	}
}

func TestDefaultsFireOnceOnFirstHit(t *testing.T) {
	plan := NewPlan(0, Injection{Site: "y"})
	Activate(plan)
	defer Deactivate()
	if Hit("y") == nil {
		t.Fatal("first hit did not fire")
	}
	if Hit("y") != nil {
		t.Fatal("second hit fired; default Count is 1")
	}
}

func TestNegativeCountFiresForever(t *testing.T) {
	plan := NewPlan(0, Injection{Site: "z", After: 2, Count: -1})
	Activate(plan)
	defer Deactivate()
	n := 0
	for i := 0; i < 10; i++ {
		if Hit("z") != nil {
			n++
		}
	}
	if n != 9 {
		t.Fatalf("fired %d times over 10 hits with After=2 Count=-1, want 9", n)
	}
}

func TestInjectedErrorMatchesSentinel(t *testing.T) {
	Activate(NewPlan(0, Injection{Site: "e"}))
	defer Deactivate()
	err := Error("e")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("Error = %v, want errors.Is(err, ErrInjected)", err)
	}
}

func TestCustomErrorAndDelay(t *testing.T) {
	boom := errors.New("boom")
	Activate(NewPlan(0, Injection{Site: "c", Err: boom, Delay: time.Millisecond}))
	defer Deactivate()
	f := Hit("c")
	if f == nil || f.Err != boom || f.Delay != time.Millisecond {
		t.Fatalf("Firing = %+v, want Err=boom Delay=1ms", f)
	}
}

func TestPanicValue(t *testing.T) {
	Activate(NewPlan(0, Injection{Site: "p"}))
	defer Deactivate()
	defer func() {
		r := recover()
		pv, ok := r.(PanicValue)
		if !ok || pv.Site != "p" {
			t.Fatalf("recovered %v, want PanicValue{Site: p}", r)
		}
	}()
	Panic("p")
	t.Fatal("Panic did not panic")
}

func TestSeededProbabilityIsDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		plan := NewPlan(seed, Injection{Site: "r", Count: -1, Prob: 0.5})
		Activate(plan)
		defer Deactivate()
		out := make([]bool, 32)
		for i := range out {
			out[i] = Hit("r") != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times; expected a mix", fired, len(a))
	}
}
