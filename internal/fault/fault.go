// Package fault is a deterministic fault-injection framework for GPSA's
// robustness tests and examples.
//
// Production code declares named injection sites at the places where the
// paper's failure model bites — an actor dying mid-message, an mmap sync
// failing, a vertex-file commit tearing, a cluster connection dropping —
// and consults them through the cheap helpers below (Error, Panic,
// Stall). When no Plan is active every helper is a single atomic pointer
// load and a nil return, so the sites cost nothing in normal operation.
//
// Tests and examples arm a Plan: a set of Injections, each naming a
// site, the hit index at which it starts firing, how many hits fire, and
// optionally a seeded firing probability. Hit counting is atomic and the
// probability stream comes from a seeded rand.Rand, so a given plan
// replays identically — the property that lets recovery tests assert
// bit-identical results against an uninjected run.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical site names. A site is just a string — packages may declare
// private sites — but the cross-package ones are collected here so tests
// and examples have one vocabulary.
const (
	// SiteActorExecute fires inside the actor system just before an
	// actor's Execute runs (including restarts): an injected panic there
	// simulates an actor that dies the moment it is scheduled.
	SiteActorExecute = "actor.execute.panic"
	// SiteDispatcherMsg fires once per message a dispatcher generates;
	// Panic simulates a dispatcher actor dying on its Nth message.
	SiteDispatcherMsg = "core.dispatcher.panic"
	// SiteComputerMsg fires once per message a computing worker applies;
	// Panic simulates a computing actor dying on its Nth message.
	SiteComputerMsg = "core.computer.panic"
	// SiteComputerStall fires once per message a computing worker applies;
	// Stall sleeps for the injection's Delay, simulating a worker wedged
	// in user code (the case the superstep watchdog exists for).
	SiteComputerStall = "core.computer.stall"
	// SiteStepCrash fires once per superstep after the dispatch phase;
	// Error simulates whole-process death without commit (the paper's
	// crash model — recovery happens on reopen, not in-process).
	SiteStepCrash = "core.step.crash"
	// SiteMmapSync fires in mmap.Map.Sync; Error simulates a failed
	// msync/write-back (disk full, I/O error).
	SiteMmapSync = "mmap.sync.error"
	// SiteCommitTorn fires in vertexfile.File.Commit; Error aborts the
	// commit and corrupts the header checksum, simulating a crash that
	// tears the header mid-flush.
	SiteCommitTorn = "vertexfile.commit.torn"
	// SiteConnDrop fires per data-plane frame write in the cluster;
	// Error closes the underlying connection first, simulating a
	// dropped TCP connection.
	SiteConnDrop = "cluster.conn.drop"
	// SiteConnStall fires per data-plane frame write in the cluster;
	// Stall sleeps for the injection's Delay, simulating a stalled link.
	SiteConnStall = "cluster.conn.stall"

	// The cluster.conn.* sites below fire per raw write inside the
	// cluster's flaky transport wrapper, under both control and data
	// planes — the hostile-network vocabulary of the chaos harness.
	//
	// SiteConnDelay: Stall sleeps for the injection's Delay before the
	// write proceeds, simulating a congested or high-latency link.
	SiteConnDelay = "cluster.conn.delay"
	// SiteConnReset: the connection is closed mid-stream and the write
	// fails, simulating an RST that can tear a frame in half.
	SiteConnReset = "cluster.conn.reset"
	// SiteConnShortWrite: a prefix of the bytes reaches the wire before
	// the connection dies — the torn-frame case checksums must catch.
	SiteConnShortWrite = "cluster.conn.shortwrite"
	// SiteConnCorrupt: one bit of the written bytes is flipped in transit;
	// the frame checksum must detect it, never silently deserialize it.
	SiteConnCorrupt = "cluster.conn.corrupt"
	// SiteConnPartition: writes are silently blackholed for the
	// injection's Delay — a one-way partition that heals by itself. The
	// reads keep flowing, which is exactly the asymmetry heartbeat-based
	// liveness cannot see.
	SiteConnPartition = "cluster.conn.partition"
	// SiteColumnSync fires in vertexfile.File.CommitState between the
	// reconcile pass and the column msync; Error simulates the column
	// write-back failing, which must leave the header unsealed (still
	// running) — the durability-ordering rule the crash tests enforce.
	SiteColumnSync = "vertexfile.sync.columns"

	// The kill.* sites are consulted by Crash: when armed they terminate
	// the whole process with SIGKILL, the real thing rather than a
	// simulated error. Each fires once per superstep at a distinct point
	// of the commit protocol, so a torture plan can park a process death
	// at any instant of the durability state machine.
	//
	// SiteKillBeginActive: in Begin, after the active-set bitmap is
	// written and synced but before the header is sealed running.
	SiteKillBeginActive = "kill.begin.active"
	// SiteKillDispatch: in the engine, after all DISPATCH_OVER
	// notifications are collected (mid-superstep, update column dirty).
	SiteKillDispatch = "kill.dispatch"
	// SiteKillBarrier: in the engine, after the compute barrier acks
	// (superstep computed but not committed).
	SiteKillBarrier = "kill.barrier"
	// SiteKillCommitColumns: in CommitState, after the reconcile pass but
	// before the columns are synced.
	SiteKillCommitColumns = "kill.commit.columns"
	// SiteKillCommitSeal: in CommitState, after the columns are synced
	// but before the header seal — the window the digest check guards.
	SiteKillCommitSeal = "kill.commit.seal"
	// SiteKillCommitDone: in CommitState, after the sealed header is
	// synced (the superstep is durable; death here must lose nothing).
	SiteKillCommitDone = "kill.commit.done"

	// The serve.* sites fire inside the long-lived serving layer
	// (internal/serve), where the unit of failure is a whole job rather
	// than a superstep.
	//
	// SiteServeJobFail fires once per job execution attempt, before the
	// engine runs; Error simulates a transient job-tier failure (graph
	// momentarily unreadable, resource exhaustion) so tests can pin the
	// job manager's retry-with-backoff and the circuit breaker that
	// quarantines a repeatedly failing (graph, program) pair.
	SiteServeJobFail = "serve.job.fail"
	// SiteServeJournalSync fires in the job journal's append path; Error
	// simulates the journal fsync failing (disk full, I/O error) — the
	// submission must be refused rather than acknowledged undurably.
	SiteServeJournalSync = "serve.journal.sync"
	// SiteKillServeJournal is a kill.* site consulted with Crash after a
	// journal record is written but before it is synced: process death
	// with a possibly torn journal tail, which replay must tolerate.
	SiteKillServeJournal = "kill.serve.journal"

	// The cluster.node.kill.* sites simulate a cluster node dying abruptly
	// (in-process SIGKILL): consulted with Error, a firing makes the node
	// abandon the superstep without commit, close nothing gracefully, and
	// exit its control loop — the coordinator must detect the death and
	// drive rollback + rejoin.
	//
	// SiteNodeKillDispatch fires once per vertex a node dispatches, so a
	// plan can park the death anywhere inside the dispatch stream.
	SiteNodeKillDispatch = "cluster.node.kill.dispatch"
	// SiteNodeKillBarrier fires at the compute barrier, before the
	// node commits — mid-barrier death, update column dirty.
	SiteNodeKillBarrier = "cluster.node.kill.barrier"
	// SiteNodeKillMigrate fires when a node handles a MIGRATE frame
	// (extract on the donor, adopt on the recipient): the node dies
	// mid-migration, and the coordinator must roll the membership change
	// back through the ordinary rollback/rejoin path.
	SiteNodeKillMigrate = "cluster.node.kill.migrate"

	// The cluster.migrate.* sites fire once per elastic-membership frame
	// (MIGRATE/JOIN/DRAIN/ROUTING) a sender puts on the wire, mirroring
	// the per-write cluster.conn.* vocabulary at frame granularity so a
	// plan can disturb exactly the Nth step of a migration.
	//
	// SiteMigrateStall: Stall sleeps for the injection's Delay before the
	// frame is written.
	SiteMigrateStall = "cluster.migrate.stall"
	// SiteMigrateReset: the connection is closed before the frame is
	// buffered; the sender sees a failed write, nothing reaches the wire.
	SiteMigrateReset = "cluster.migrate.reset"
	// SiteMigrateCorrupt: one bit of the frame is flipped after its
	// checksum is sealed; the receiver must reject it at decode.
	SiteMigrateCorrupt = "cluster.migrate.corrupt"
	// SiteMigrateShortWrite: a prefix of the frame reaches the wire and
	// the connection dies — the torn-frame case the length prefix and
	// checksum must surface.
	SiteMigrateShortWrite = "cluster.migrate.shortwrite"

	// The disk.* sites fire inside internal/diskio, the fault-injectable
	// storage layer every durability path routes file I/O through. They
	// model the hostile-disk vocabulary: writes hitting ENOSPC, reads and
	// syncs returning EIO, partial writes, syncs that tear, and sealed
	// bytes rotting at rest. Injected errors carry the matching typed
	// error (diskio.ErrDiskFull / diskio.ErrIOFailure) so callers exercise
	// the same classification paths a real kernel error would take.
	//
	// SiteDiskENOSPCCreate fires when a file is created or opened for
	// writing; Error simulates open(2) failing with ENOSPC.
	SiteDiskENOSPCCreate = "disk.enospc.create"
	// SiteDiskENOSPCWrite fires once per write call; Error simulates the
	// write failing with ENOSPC after zero bytes reached the file.
	SiteDiskENOSPCWrite = "disk.enospc.write"
	// SiteDiskENOSPCPreflight fires once per free-space probe
	// (diskio.FreeSpace); a firing makes the probe report zero bytes
	// free, so admission/adoption preflight gates can be exercised
	// without actually filling a disk.
	SiteDiskENOSPCPreflight = "disk.enospc.preflight"
	// SiteDiskENOSPCSync fires once per fsync; Error simulates the
	// write-back failing with ENOSPC (delayed allocation discovering the
	// disk is full only at flush time — the classic ext4/XFS trap).
	SiteDiskENOSPCSync = "disk.enospc.sync"
	// SiteDiskEIOWrite fires once per write call; Error simulates a
	// failing device (EIO) with nothing durable.
	SiteDiskEIOWrite = "disk.eio.write"
	// SiteDiskEIORead fires once per read call; Error simulates a read
	// returning EIO — a sector the device can no longer serve.
	SiteDiskEIORead = "disk.eio.read"
	// SiteDiskEIOSync fires once per fsync/msync on a durability path
	// (including the mmap layer's Sync/SyncRange under the vertex value
	// file); Error simulates the write-back failing with EIO, after which
	// the kernel may have dropped the dirty pages — the caller must treat
	// the on-disk state as unknown.
	SiteDiskEIOSync = "disk.eio.sync"
	// SiteDiskShortWrite fires once per write call: a prefix of the bytes
	// reaches the file and the call fails — the torn-record case journal
	// replay and checksums must surface.
	SiteDiskShortWrite = "disk.shortwrite.write"
	// SiteDiskTornSync fires once per fsync: the file's freshly written
	// tail is torn (truncated mid-record) before the sync reports failure,
	// simulating a power cut mid-write-back.
	SiteDiskTornSync = "disk.torn-sync.sync"
	// SiteDiskBitrot fires once per whole-file read through the diskio
	// layer: one bit of the returned bytes is flipped, simulating at-rest
	// corruption of sealed data. Checksums (vertexfile column digests, CSR
	// .sum sidecars, journal JSON framing) must detect it — the scrubber's
	// whole reason to exist.
	SiteDiskBitrot = "disk.bitrot.read"
)

// ErrInjected is matched (via errors.Is) by every error this package
// injects, letting callers distinguish injected faults from real ones.
var ErrInjected = errors.New("fault: injected failure")

type siteError struct{ site string }

func (e siteError) Error() string        { return "fault: injected failure at " + e.site }
func (e siteError) Is(target error) bool { return target == ErrInjected }

// PanicValue is the value Panic panics with, so recovery code and tests
// can recognize injected panics in failure messages.
type PanicValue struct{ Site string }

func (p PanicValue) String() string { return "fault: injected panic at " + p.Site }

// Injection arms one site.
type Injection struct {
	// Site names the injection site (see the Site* constants).
	Site string
	// After is the 1-based hit index at which the site starts firing.
	// Zero means 1: fire from the first hit.
	After int64
	// Count is how many hits fire once After is reached. Zero means 1;
	// negative means every hit from After on.
	Count int64
	// Prob, when in (0, 1), gates each eligible hit on a draw from the
	// plan's seeded random stream.
	Prob float64
	// Err overrides the injected error (default: a siteError matching
	// ErrInjected).
	Err error
	// Delay is how long Stall sites sleep when firing.
	Delay time.Duration
}

type armed struct {
	Injection
	hits  atomic.Int64
	fired atomic.Int64
}

// Plan is an immutable set of armed injections plus the seeded random
// stream shared by its probabilistic sites. Arm it with Activate.
type Plan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	sites map[string]*armed
}

// NewPlan builds a plan. One injection per site; a later injection for
// the same site replaces the earlier one.
func NewPlan(seed int64, injections ...Injection) *Plan {
	p := &Plan{rng: rand.New(rand.NewSource(seed)), sites: make(map[string]*armed)}
	for _, in := range injections {
		if in.After <= 0 {
			in.After = 1
		}
		if in.Count == 0 {
			in.Count = 1
		}
		p.sites[in.Site] = &armed{Injection: in}
	}
	return p
}

// Hits returns how many times site has been consulted under this plan.
func (p *Plan) Hits(site string) int64 {
	if a := p.sites[site]; a != nil {
		return a.hits.Load()
	}
	return 0
}

// Fired returns how many times site actually injected a fault.
func (p *Plan) Fired(site string) int64 {
	if a := p.sites[site]; a != nil {
		return a.fired.Load()
	}
	return 0
}

var active atomic.Pointer[Plan]

// Activate makes p the process-wide active plan. Passing nil is
// equivalent to Deactivate.
func Activate(p *Plan) { active.Store(p) }

// Deactivate disarms fault injection; every site becomes a no-op again.
func Deactivate() { active.Store(nil) }

// Enabled reports whether a plan is active.
func Enabled() bool { return active.Load() != nil }

// Firing describes one injected fault at a site.
type Firing struct {
	Site  string
	Err   error
	Delay time.Duration
}

// Hit consults a site: it returns nil when injection is disabled, the
// site is not armed, or the armed injection does not fire on this hit.
func Hit(site string) *Firing {
	p := active.Load()
	if p == nil {
		return nil
	}
	a, ok := p.sites[site]
	if !ok {
		return nil
	}
	n := a.hits.Add(1)
	if n < a.After {
		return nil
	}
	if a.Count > 0 && n >= a.After+a.Count {
		return nil
	}
	if a.Prob > 0 && a.Prob < 1 {
		p.mu.Lock()
		roll := p.rng.Float64()
		p.mu.Unlock()
		if roll >= a.Prob {
			return nil
		}
	}
	a.fired.Add(1)
	err := a.Err
	if err == nil {
		err = siteError{site: site}
	}
	return &Firing{Site: site, Err: err, Delay: a.Delay}
}

// Error returns the injected error when site fires, nil otherwise.
func Error(site string) error {
	if f := Hit(site); f != nil {
		return f.Err
	}
	return nil
}

// Panic panics with a PanicValue when site fires.
func Panic(site string) {
	if f := Hit(site); f != nil {
		panic(PanicValue{Site: site})
	}
}

// Stall sleeps for the injection's Delay when site fires.
func Stall(site string) {
	if f := Hit(site); f != nil && f.Delay > 0 {
		time.Sleep(f.Delay)
	}
}

// Crash kills the whole process with SIGKILL when site fires: no
// deferred functions, no flushes, no exit handlers — the closest
// userspace gets to yanking the power cord. The torture harness arms
// kill.* sites through the environment (see ActivateFromEnv) to park a
// process death at an exact instant of the commit protocol.
func Crash(site string) {
	if f := Hit(site); f != nil {
		killSelf()
	}
}

// String implements fmt.Stringer for debugging.
func (f *Firing) String() string {
	return fmt.Sprintf("fault firing at %s (err=%v delay=%v)", f.Site, f.Err, f.Delay)
}
