package fault

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestFaultSiteInventory pins the fault-site catalogue in DESIGN.md
// ("Storage failure model") to the Site* constants in this package:
// every constant must appear in the catalogue table and every
// catalogued site must exist in code. A new injection site without an
// entry in the failure-model documentation — or a documented site that
// was renamed or removed — fails here, not in review.
func TestFaultSiteInventory(t *testing.T) {
	code := sourceSites(t)
	if len(code) < 30 {
		t.Fatalf("parsed only %d Site* constants from fault.go; parser is broken", len(code))
	}
	doc := catalogueSites(t)

	for site := range code {
		if !doc[site] {
			t.Errorf("fault site %q is not in the DESIGN.md fault-site catalogue", site)
		}
	}
	for site := range doc {
		if !code[site] {
			t.Errorf("DESIGN.md catalogues fault site %q, which no longer exists in internal/fault", site)
		}
	}
}

// sourceSites parses fault.go and returns the string values of all
// exported Site* constants.
func sourceSites(t *testing.T) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fault.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sites := make(map[string]bool)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Site") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				val, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("constant %s: %v", name.Name, err)
				}
				sites[val] = true
			}
		}
	}
	return sites
}

// catalogueSites extracts the first backticked token of each table row
// between the fault-site-catalogue markers in DESIGN.md.
func catalogueSites(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	const begin, end = "<!-- fault-site-catalogue:begin -->", "<!-- fault-site-catalogue:end -->"
	b := strings.Index(text, begin)
	e := strings.Index(text, end)
	if b < 0 || e < 0 || e < b {
		t.Fatalf("DESIGN.md is missing the %s / %s markers", begin, end)
	}
	rowSite := regexp.MustCompile("^\\| `([^`]+)` \\|")
	sites := make(map[string]bool)
	for _, line := range strings.Split(text[b+len(begin):e], "\n") {
		if m := rowSite.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			sites[m[1]] = true
		}
	}
	if len(sites) == 0 {
		t.Fatal("fault-site catalogue has no table rows")
	}
	return sites
}
