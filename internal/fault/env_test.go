package fault

import (
	"testing"
	"time"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=42;site=kill.commit.seal,after=3;site=core.computer.stall,after=1,count=10,delay=100ms,prob=0.5")
	if err != nil {
		t.Fatal(err)
	}
	seal := p.sites["kill.commit.seal"]
	if seal == nil || seal.After != 3 || seal.Count != 1 {
		t.Fatalf("kill.commit.seal = %+v", seal)
	}
	stall := p.sites["core.computer.stall"]
	if stall == nil || stall.Count != 10 || stall.Delay != 100*time.Millisecond || stall.Prob != 0.5 {
		t.Fatalf("core.computer.stall = %+v", stall)
	}
}

func TestParsePlanRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"site=",                  // empty site name? site= gives Site=""
		"after=3",                // injection without a site
		"site=x,bogus=1",         // unknown key
		"site=x,after=notanum",   // bad integer
		"seed=zzz;site=x",        // bad seed
		"site=x,delay=5lightyrs", // bad duration
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

func TestParsePlanFiresLikeHandBuilt(t *testing.T) {
	p, err := ParsePlan("site=test.site,after=2,count=2")
	if err != nil {
		t.Fatal(err)
	}
	Activate(p)
	defer Deactivate()
	var fired []bool
	for i := 0; i < 5; i++ {
		fired = append(fired, Hit("test.site") != nil)
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (all: %v)", i+1, fired[i], want[i], fired)
		}
	}
}

func TestActivateFromEnvUnset(t *testing.T) {
	t.Setenv(EnvVar, "")
	ok, err := ActivateFromEnv()
	if ok || err != nil {
		t.Fatalf("ActivateFromEnv with empty env = %v, %v", ok, err)
	}
}

func TestActivateFromEnvArms(t *testing.T) {
	t.Setenv(EnvVar, "site=env.test.site")
	defer Deactivate()
	ok, err := ActivateFromEnv()
	if err != nil || !ok {
		t.Fatalf("ActivateFromEnv = %v, %v", ok, err)
	}
	if Hit("env.test.site") == nil {
		t.Fatal("armed site did not fire")
	}
}
