package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// EnvVar is the environment variable ActivateFromEnv reads. The torture
// harness sets it on gpsa subprocesses so a freshly exec'd process can
// arm the same deterministic plan its parent chose.
const EnvVar = "GPSA_FAULT"

// ParsePlan builds a Plan from a compact textual spec, the format
// carried by the GPSA_FAULT environment variable:
//
//	[seed=N;]site=NAME[,after=N][,count=N][,prob=F][,delay=D][;site=...]
//
// Injections are ';'-separated; each is a ','-separated list of key=value
// fields, of which site is mandatory. delay accepts time.ParseDuration
// syntax. An optional leading seed=N item seeds the plan's probability
// stream (default 1).
func ParsePlan(spec string) (*Plan, error) {
	seed := int64(1)
	var injections []Injection
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if v, ok := strings.CutPrefix(item, "seed="); ok && !strings.Contains(item, ",") {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q: %w", v, err)
			}
			seed = n
			continue
		}
		var in Injection
		for _, field := range strings.Split(item, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return nil, fmt.Errorf("fault: bad field %q in %q", field, item)
			}
			var err error
			switch key {
			case "site":
				in.Site = val
			case "after":
				in.After, err = strconv.ParseInt(val, 10, 64)
			case "count":
				in.Count, err = strconv.ParseInt(val, 10, 64)
			case "prob":
				in.Prob, err = strconv.ParseFloat(val, 64)
			case "delay":
				in.Delay, err = time.ParseDuration(val)
			default:
				return nil, fmt.Errorf("fault: unknown field %q in %q", key, item)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: bad %s %q: %w", key, val, err)
			}
		}
		if in.Site == "" {
			return nil, fmt.Errorf("fault: injection %q names no site", item)
		}
		injections = append(injections, in)
	}
	return NewPlan(seed, injections...), nil
}

// ActivateFromEnv arms the plan described by the GPSA_FAULT environment
// variable, if set. It returns whether a plan was activated. An
// unparsable spec is an error: a torture run whose kill plan silently
// failed to arm would pass vacuously.
func ActivateFromEnv() (bool, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return false, nil
	}
	p, err := ParsePlan(spec)
	if err != nil {
		return false, err
	}
	Activate(p)
	return true, nil
}
