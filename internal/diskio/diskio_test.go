package diskio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
)

func armOne(t *testing.T, site string) {
	t.Helper()
	fault.Activate(fault.NewPlan(1, fault.Injection{Site: site}))
	t.Cleanup(fault.Deactivate)
}

func TestCreateENOSPC(t *testing.T) {
	metrics.ResetCounters()
	armOne(t, fault.SiteDiskENOSPCCreate)
	path := filepath.Join(t.TempDir(), "f")
	_, err := Create(path)
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("Create under enospc.create: got %v, want ErrDiskFull", err)
	}
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected error not recognizable: %v", err)
	}
	if _, serr := os.Stat(path); !errors.Is(serr, os.ErrNotExist) {
		t.Fatalf("file exists after failed create")
	}
	if metrics.Counter(metrics.CtrDiskENOSPC) == 0 || metrics.Counter(metrics.CtrDiskWriteErrors) == 0 {
		t.Fatalf("disk.enospc/disk.write_errors not incremented")
	}
}

func TestWriteENOSPCLeavesNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	armOne(t, fault.SiteDiskENOSPCWrite)
	n, err := f.Write([]byte("hello"))
	if n != 0 || !errors.Is(err, ErrDiskFull) {
		t.Fatalf("Write under enospc.write: n=%d err=%v, want 0, ErrDiskFull", n, err)
	}
	st, _ := f.Stat()
	if st.Size() != 0 {
		t.Fatalf("bytes reached the file despite clean ENOSPC: size=%d", st.Size())
	}
}

func TestShortWriteLeavesPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	armOne(t, fault.SiteDiskShortWrite)
	payload := []byte("hello world!")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrIOFailure) {
		t.Fatalf("short write: err=%v, want ErrIOFailure", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("short write wrote n=%d, want prefix %d", n, len(payload)/2)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, payload[:n]) {
		t.Fatalf("file holds %q, want the prefix %q", got, payload[:n])
	}
}

func TestTornSyncTearsUnsyncedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stable := []byte("stable-record\n")
	if _, err := f.Write(stable); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fresh := []byte("fresh-record-that-tears\n")
	if _, err := f.Write(fresh); err != nil {
		t.Fatal(err)
	}
	armOne(t, fault.SiteDiskTornSync)
	if err := f.Sync(); !errors.Is(err, ErrIOFailure) {
		t.Fatalf("torn sync: err=%v, want ErrIOFailure", err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.HasPrefix(got, stable) {
		t.Fatalf("synced prefix damaged by torn sync: %q", got)
	}
	if len(got) >= len(stable)+len(fresh) {
		t.Fatalf("torn sync tore nothing: size=%d", len(got))
	}
	if len(got) <= len(stable) {
		t.Fatalf("torn sync must leave a torn prefix of the fresh tail, got clean rollback")
	}
}

func TestEIOSyncAndRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	armOne(t, fault.SiteDiskEIOSync)
	if err := f.Sync(); !errors.Is(err, ErrIOFailure) {
		t.Fatalf("sync under eio.sync: %v", err)
	}
	f.Close()

	armOne(t, fault.SiteDiskEIORead)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var buf [1]byte
	if _, err := r.Read(buf[:]); !errors.Is(err, ErrIOFailure) {
		t.Fatalf("read under eio.read: %v", err)
	}
}

func TestReadFileBitrotFlipsOneBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	payload := bytes.Repeat([]byte{0xAA}, 64)
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	armOne(t, fault.SiteDiskBitrot)
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bitrot changed %d bytes, want exactly 1", diff)
	}
	clean, err := ReadFile(path)
	if err != nil || !bytes.Equal(clean, payload) {
		t.Fatalf("on-disk bytes must be untouched by read-path bitrot: err=%v", err)
	}
}

func TestRotCorruptsInPlace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	payload := bytes.Repeat([]byte{0x55}, 32)
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Rot(path, 10); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if bytes.Equal(got, payload) {
		t.Fatalf("Rot changed nothing")
	}
	if err := Rot(path, 10); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, payload) {
		t.Fatalf("double Rot at same offset must restore the original")
	}
}

func TestWriteFileAtomicFailureLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	armOne(t, fault.SiteDiskENOSPCWrite)
	err := WriteFileAtomic(path, []byte("v2-much-longer"), 0o644)
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("atomic write under enospc: %v", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "v1" {
		t.Fatalf("target damaged by failed atomic write: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp file leaked: %v", ents)
	}
}

func TestWriteFileTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	armOne(t, fault.SiteDiskEIOWrite)
	if err := WriteFile(path, []byte("x"), 0o644); !errors.Is(err, ErrIOFailure) {
		t.Fatalf("WriteFile under eio.write: %v", err)
	}
	if err := WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("clean WriteFile: %v", err)
	}
}

func TestFreeSpace(t *testing.T) {
	free, err := FreeSpace(t.TempDir())
	if errors.Is(err, errors.ErrUnsupported) {
		t.Skip("statfs unsupported on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	if free == 0 {
		t.Fatalf("zero free space on a writable tmpdir")
	}
	armOne(t, fault.SiteDiskENOSPCPreflight)
	free, err = FreeSpace(t.TempDir())
	if err != nil || free != 0 {
		t.Fatalf("preflight firing must report zero free: free=%d err=%v", free, err)
	}
}

func TestSyncDir(t *testing.T) {
	dir := t.TempDir()
	if err := SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	armOne(t, fault.SiteDiskEIOSync)
	if err := SyncDir(dir); !errors.Is(err, ErrIOFailure) {
		t.Fatalf("SyncDir under eio.sync: %v", err)
	}
}

func TestClassifyPassthrough(t *testing.T) {
	if Classify("write", "p", nil) != nil {
		t.Fatalf("nil must classify to nil")
	}
	err := Classify("write", "p", errors.New("boom"))
	if !errors.Is(err, ErrIOFailure) {
		t.Fatalf("generic error class: %v", err)
	}
	if again := Classify("sync", "p", err); again != err {
		t.Fatalf("already-classified error must pass through")
	}
}
