// Package diskio is the fault-injectable storage layer every durability
// path in the repository routes file I/O through: the vertex value file
// (via internal/mmap), the gpsa-serve job journal, the CSR writers in
// internal/graph and internal/preprocess, and the benchmark artifact
// writers.
//
// The package does three things the raw os.File API does not:
//
//   - Fault injection. Every operation consults the disk.* sites in
//     internal/fault (ENOSPC on create/write/sync, EIO on
//     read/write/sync, short writes, torn syncs, bit-rot on whole-file
//     reads), so seeded torture plans can disturb exactly the Nth
//     operation of a durability protocol.
//
//   - Classification. Failures — real or injected — are wrapped with a
//     typed class, ErrDiskFull or ErrIOFailure, that callers branch on
//     (retry-with-backoff, degraded mode, abort) without string
//     matching. errors.Is sees through the wrapper to both the class
//     and the underlying error.
//
//   - Accounting. Classified write-path failures increment the
//     disk.write_errors counter (and disk.enospc for the disk-full
//     subset), the signal gpsa-serve's degraded-mode probe and the
//     disktest harness watch.
//
// The wrapper adds one predictable branch per call when no fault plan
// is active; it buffers nothing and never retries on its own — retry
// policy belongs to the caller, which knows what a failed write means
// for its protocol.
package diskio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/fault"
	"repro/internal/metrics"
)

// ErrDiskFull is the typed class for failures that mean the volume is
// out of space (ENOSPC, EDQUOT, or an injected disk.enospc.* firing).
// Retrying without freeing space is pointless; callers should degrade.
var ErrDiskFull = errors.New("diskio: disk full")

// ErrIOFailure is the typed class for failures that mean the device or
// kernel could not complete the operation (EIO, short writes, torn
// syncs, or an injected disk.eio.* / disk.shortwrite.* /
// disk.torn-sync.* firing). After a failed sync the on-disk state of
// the unsynced tail is unknown; callers must re-verify or roll back.
var ErrIOFailure = errors.New("diskio: i/o failure")

// ErrCorrupt is the typed class for data that was read back but failed
// its integrity check (checksum or digest mismatch) — at-rest bit-rot
// or a torn write that slipped past the crash protocol. The scrubber
// quarantines and repairs artifacts that produce it.
var ErrCorrupt = errors.New("diskio: corrupt data")

// classified wraps an underlying error with its typed class and the
// operation context. Unwrap exposes both, so errors.Is(err, ErrDiskFull)
// and errors.Is(err, fault.ErrInjected) each work.
type classified struct {
	class error
	op    string
	path  string
	err   error
}

func (e *classified) Error() string {
	return fmt.Sprintf("%v: %s %s: %v", e.class, e.op, e.path, e.err)
}

func (e *classified) Unwrap() []error { return []error{e.class, e.err} }

// isFull reports whether err is a real out-of-space errno.
func isFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// Classify wraps a storage error with its typed class: ErrDiskFull for
// out-of-space errnos, ErrIOFailure for everything else. op names the
// failed operation ("write", "sync", "create", ...) and decides the
// accounting: write-path ops count into disk.write_errors. A nil err
// returns nil, and an already-classified error passes through
// unchanged, so callers can wrap unconditionally.
func Classify(op, path string, err error) error {
	if err == nil {
		return nil
	}
	var c *classified
	if errors.As(err, &c) {
		return err
	}
	class := ErrIOFailure
	if isFull(err) {
		class = ErrDiskFull
	}
	return classify(class, op, path, err)
}

func classify(class error, op, path string, err error) error {
	switch op {
	case "read":
	default:
		metrics.Inc(metrics.CtrDiskWriteErrors)
	}
	if class == ErrDiskFull {
		metrics.Inc(metrics.CtrDiskENOSPC)
	}
	return &classified{class: class, op: op, path: path, err: err}
}

// File wraps an *os.File with the disk.* fault sites and typed error
// classification. It implements io.Reader, io.Writer, io.ReaderAt,
// io.WriterAt, io.Seeker, and io.Closer.
type File struct {
	f *os.File
	// unsynced counts bytes written since the last successful Sync —
	// the tail a torn-sync firing tears.
	unsynced int64
}

// wrap adopts an already-open *os.File into the fault-injectable layer.
func wrap(f *os.File) *File { return &File{f: f} }

// openWrite consults the create-site and opens path for writing.
func openWrite(path string, flag int, perm os.FileMode) (*File, error) {
	if f := fault.Hit(fault.SiteDiskENOSPCCreate); f != nil {
		return nil, classify(ErrDiskFull, "create", path, f.Err)
	}
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, Classify("create", path, err)
	}
	return wrap(f), nil
}

// Create creates or truncates path for writing, like os.Create.
func Create(path string) (*File, error) {
	return openWrite(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenFile is the generalized open. Opens that can write (O_WRONLY,
// O_RDWR, O_CREATE, O_APPEND) consult the create fault site; read-only
// opens do not.
func OpenFile(path string, flag int, perm os.FileMode) (*File, error) {
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_APPEND) != 0 {
		return openWrite(path, flag, perm)
	}
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, Classify("open", path, err)
	}
	return wrap(f), nil
}

// Open opens path read-only, like os.Open.
func Open(path string) (*File, error) {
	return OpenFile(path, os.O_RDONLY, 0)
}

// CreateTemp creates a uniquely named temporary file in dir, like
// os.CreateTemp, under the create fault site.
func CreateTemp(dir, pattern string) (*File, error) {
	if f := fault.Hit(fault.SiteDiskENOSPCCreate); f != nil {
		return nil, classify(ErrDiskFull, "create", filepath.Join(dir, pattern), f.Err)
	}
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, Classify("create", filepath.Join(dir, pattern), err)
	}
	return wrap(f), nil
}

// OpenRaw opens path with the given flags under the create fault site
// and returns the raw *os.File. It exists for the mmap layer, which
// needs the descriptor itself for mmap(2); descriptor-level reads and
// writes bypass the fault sites, so callers of OpenRaw must consult
// SyncFault on their own write-back paths.
func OpenRaw(path string, flag int, perm os.FileMode) (*os.File, error) {
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_APPEND) != 0 {
		if f := fault.Hit(fault.SiteDiskENOSPCCreate); f != nil {
			return nil, classify(ErrDiskFull, "create", path, f.Err)
		}
	}
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, Classify("open", path, err)
	}
	return f, nil
}

// writeFault consults the write-family fault sites for an n-byte write.
// It returns (prefix, err) where prefix is how many bytes the caller
// should actually write before failing with err (the short-write case);
// prefix is 0 for clean failures and -1 when no site fired.
func writeFault(path string, n int) (int, error) {
	if f := fault.Hit(fault.SiteDiskENOSPCWrite); f != nil {
		return 0, classify(ErrDiskFull, "write", path, f.Err)
	}
	if f := fault.Hit(fault.SiteDiskEIOWrite); f != nil {
		return 0, classify(ErrIOFailure, "write", path, f.Err)
	}
	if f := fault.Hit(fault.SiteDiskShortWrite); f != nil {
		return n / 2, classify(ErrIOFailure, "write", path, f.Err)
	}
	return -1, nil
}

// Write implements io.Writer under the write fault sites. A short-write
// firing puts a prefix of p in the file before failing — the torn-record
// case downstream checksums and journal replay must surface.
func (f *File) Write(p []byte) (int, error) {
	prefix, ferr := writeFault(f.f.Name(), len(p))
	if ferr != nil {
		n := 0
		if prefix > 0 {
			n, _ = f.f.Write(p[:prefix])
			f.unsynced += int64(n)
		}
		return n, ferr
	}
	n, err := f.f.Write(p)
	f.unsynced += int64(n)
	return n, Classify("write", f.f.Name(), err)
}

// WriteAt implements io.WriterAt under the write fault sites.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	prefix, ferr := writeFault(f.f.Name(), len(p))
	if ferr != nil {
		n := 0
		if prefix > 0 {
			n, _ = f.f.WriteAt(p[:prefix], off)
			f.unsynced += int64(n)
		}
		return n, ferr
	}
	n, err := f.f.WriteAt(p, off)
	f.unsynced += int64(n)
	return n, Classify("write", f.f.Name(), err)
}

// Read implements io.Reader under the EIO read fault site. io.EOF
// passes through unwrapped so the reader contract holds; real read
// errors are classified.
func (f *File) Read(p []byte) (int, error) {
	if fr := fault.Hit(fault.SiteDiskEIORead); fr != nil {
		return 0, classify(ErrIOFailure, "read", f.f.Name(), fr.Err)
	}
	n, err := f.f.Read(p)
	if err != nil && err != io.EOF {
		return n, Classify("read", f.f.Name(), err)
	}
	return n, err
}

// ReadAt implements io.ReaderAt under the EIO read fault site; io.EOF
// passes through unwrapped.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if fr := fault.Hit(fault.SiteDiskEIORead); fr != nil {
		return 0, classify(ErrIOFailure, "read", f.f.Name(), fr.Err)
	}
	n, err := f.f.ReadAt(p, off)
	if err != nil && err != io.EOF {
		return n, Classify("read", f.f.Name(), err)
	}
	return n, err
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

// Truncate changes the size of the file.
func (f *File) Truncate(size int64) error {
	return Classify("truncate", f.f.Name(), f.f.Truncate(size))
}

// Sync flushes the file to stable storage under the sync fault sites.
// A torn-sync firing truncates part of the unsynced tail before
// failing, simulating a power cut mid-write-back; after any sync
// failure the on-disk state of recently written bytes is unknown.
func (f *File) Sync() error {
	if fr := fault.Hit(fault.SiteDiskENOSPCSync); fr != nil {
		return classify(ErrDiskFull, "sync", f.f.Name(), fr.Err)
	}
	if fr := fault.Hit(fault.SiteDiskEIOSync); fr != nil {
		return classify(ErrIOFailure, "sync", f.f.Name(), fr.Err)
	}
	if fr := fault.Hit(fault.SiteDiskTornSync); fr != nil {
		f.tear()
		return classify(ErrIOFailure, "sync", f.f.Name(), fr.Err)
	}
	if err := f.f.Sync(); err != nil {
		return Classify("sync", f.f.Name(), err)
	}
	f.unsynced = 0
	return nil
}

// tear truncates away roughly half of the bytes written since the last
// successful sync, leaving a torn record: a prefix of the fresh tail
// survives, the rest is gone. With no unsynced bytes it does nothing.
func (f *File) tear() {
	if f.unsynced <= 0 {
		return
	}
	st, err := f.f.Stat()
	if err != nil {
		return
	}
	keep := f.unsynced / 2
	cut := f.unsynced - keep
	if cut > st.Size() {
		cut = st.Size()
	}
	_ = f.f.Truncate(st.Size() - cut)
}

// Close closes the file. The close itself is not a fault site — the
// durability-relevant failure is the sync before it.
func (f *File) Close() error {
	return Classify("close", f.f.Name(), f.f.Close())
}

// Name returns the path the file was opened with.
func (f *File) Name() string { return f.f.Name() }

// Stat returns the FileInfo describing the file.
func (f *File) Stat() (os.FileInfo, error) { return f.f.Stat() }

// OS returns the underlying *os.File for callers that need the raw
// descriptor (mmap). Operations on it bypass the fault sites.
func (f *File) OS() *os.File { return f.f }

// SyncFault consults the sync-family fault sites on behalf of a caller
// that syncs through a raw descriptor or msync (the mmap layer), so
// mmap-backed durability paths share the injection vocabulary of
// descriptor-backed ones. The torn-sync site is deliberately not
// consulted here: truncating a mapped file would SIGBUS the process
// rather than simulate a power cut. Returns the classified injected
// error, or nil.
func SyncFault(path string) error {
	if fr := fault.Hit(fault.SiteDiskENOSPCSync); fr != nil {
		return classify(ErrDiskFull, "sync", path, fr.Err)
	}
	if fr := fault.Hit(fault.SiteDiskEIOSync); fr != nil {
		return classify(ErrIOFailure, "sync", path, fr.Err)
	}
	return nil
}

// WriteFile writes data to path (create or truncate), syncs it, and
// closes it — os.WriteFile with durability and fault coverage. On any
// failure the typed error is returned and the file may hold a partial
// or unsynced prefix; callers that need all-or-nothing use
// WriteFileAtomic.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := openWrite(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.f.Close() //lint:syncerr error path: the write already failed and is being reported
		return err
	}
	if err := f.Sync(); err != nil {
		f.f.Close() //lint:syncerr error path: the sync already failed and is being reported
		return err
	}
	return f.Close()
}

// WriteFileAtomic writes data to a temp file in path's directory,
// syncs it, renames it over path, and syncs the directory — the
// all-or-nothing publish used for artifacts readers may open
// concurrently. On failure path is untouched (old content or absent)
// and the temp file is removed.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() {
		f.f.Close() //lint:syncerr error path: the operation already failed and is being reported
		os.Remove(tmp)
	}
	if _, err := f.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Chmod(tmp, perm); err != nil {
		os.Remove(tmp)
		return Classify("chmod", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return Classify("rename", path, err)
	}
	return SyncDir(dir)
}

// ReadFile reads the whole file under the EIO-read and bit-rot fault
// sites. A bit-rot firing flips one bit of the returned bytes — sealed
// data rotting at rest — which downstream digests must detect.
func ReadFile(path string) ([]byte, error) {
	if fr := fault.Hit(fault.SiteDiskEIORead); fr != nil {
		return nil, classify(ErrIOFailure, "read", path, fr.Err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if fr := fault.Hit(fault.SiteDiskBitrot); fr != nil && len(data) > 0 {
		i := len(data) / 2
		data[i] ^= 1 << (uint(i) % 8)
	}
	return data, nil
}

// Rot flips one bit of the file at path in place — the injection hook
// the disktest harness and scrub tests use to plant at-rest corruption
// deterministically. off is clamped into the file; the flipped bit is
// 1<<(off%8). Not a fault site: this is test scaffolding for the
// scrubber, exported so harnesses outside the package can use it.
func Rot(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0) //lint:syncerr test scaffolding: deliberate corruption, durability is the point of failure under test
	if err != nil {
		return err
	}
	defer f.Close() //lint:syncerr test scaffolding: read-modify-write of one byte, sync not needed
	st, err := f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		return fmt.Errorf("diskio: cannot rot empty file %s", path)
	}
	if off < 0 {
		off = 0
	}
	if off >= st.Size() {
		off = st.Size() - 1
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 1 << (uint(off) % 8)
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return f.Sync()
}

// SyncDir fsyncs the directory at dir, making a just-created or
// just-renamed entry durable. The classic crash-consistency gap:
// fsync(file) persists the bytes, only fsync(parent dir) persists the
// name.
func SyncDir(dir string) error {
	if fr := fault.Hit(fault.SiteDiskEIOSync); fr != nil {
		return classify(ErrIOFailure, "sync", dir, fr.Err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return Classify("open", dir, err)
	}
	defer d.Close() //lint:syncerr read-only descriptor: the fsync result below is what matters
	if err := d.Sync(); err != nil {
		return Classify("sync", dir, err)
	}
	return nil
}

// FreeSpace reports the bytes available to unprivileged writes on the
// volume holding path. A disk.enospc.preflight firing reports zero, so
// admission and adoption preflight gates can be exercised without
// filling a real disk. On platforms without statfs it returns
// errors.ErrUnsupported; callers treat that as "unknown" and skip the
// gate rather than refusing work.
func FreeSpace(path string) (uint64, error) {
	if fr := fault.Hit(fault.SiteDiskENOSPCPreflight); fr != nil {
		return 0, nil
	}
	return freeSpace(path)
}
