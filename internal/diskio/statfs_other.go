//go:build !linux

package diskio

import "errors"

// freeSpace is unsupported off Linux: callers treat ErrUnsupported as
// "unknown" and skip the preflight gate rather than refusing work.
func freeSpace(string) (uint64, error) {
	return 0, errors.ErrUnsupported
}
