//go:build linux

package diskio

import "syscall"

// freeSpace asks statfs(2) for the bytes available to unprivileged
// writes (Bavail, not Bfree: the root reserve does not save a job that
// runs as a normal user).
func freeSpace(path string) (uint64, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(path, &st); err != nil {
		return 0, Classify("statfs", path, err)
	}
	return st.Bavail * uint64(st.Bsize), nil
}
