package gpsa_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/algorithms"
	"repro/internal/gen"
)

func saveSample(t *testing.T) (string, *gpsa.CSR) {
	t.Helper()
	g, err := gen.RMATGraph(gen.RMATConfig{Vertices: 400, Edges: 2500, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.gpsa")
	if err := gpsa.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	return path, g
}

func TestBuildGraphAndSave(t *testing.T) {
	g, err := gpsa.BuildGraph([]gpsa.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices != 3 || g.NumEdges != 2 {
		t.Fatalf("dims (%d, %d)", g.NumVertices, g.NumEdges)
	}
	path := filepath.Join(t.TempDir(), "tiny.gpsa")
	if err := gpsa.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	levels, res, err := gpsa.BFS(path, 0, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || levels[2] != 2 {
		t.Fatalf("levels = %v, converged = %v", levels, res.Converged)
	}
}

func TestLoadEdgeList(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "e.txt")
	if err := os.WriteFile(p, []byte("# c\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	edges, err := gpsa.LoadEdgeList(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 2 || edges[1] != (gpsa.Edge{Src: 1, Dst: 2}) {
		t.Fatalf("edges = %v", edges)
	}
}

func TestRunCustomProgramAndValues(t *testing.T) {
	path, g := saveSample(t)
	vals, res, err := gpsa.Run(path, algorithms.ConnectedComponents{}, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer vals.Close()
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if vals.NumVertices() != g.NumVertices {
		t.Fatalf("NumVertices = %d", vals.NumVertices())
	}
	want := algorithms.TrueComponents(g.Symmetrize())
	_ = want // directed label propagation differs from weak components; just sanity-check labels
	for v := int64(0); v < g.NumVertices; v++ {
		if vals.Uint(v) > uint64(v) {
			t.Fatalf("vertex %d: label %d exceeds own id", v, vals.Uint(v))
		}
	}
}

func TestRunCleansUpTempValueFiles(t *testing.T) {
	path, _ := saveSample(t)
	dir := filepath.Dir(path)
	vals, _, err := gpsa.Run(path, algorithms.ConnectedComponents{}, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vals.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if len(e.Name()) >= 12 && e.Name()[:12] == ".gpsa-values" {
			t.Fatalf("temp value file %s not removed", e.Name())
		}
	}
}

func TestRunRejectsMissingGraph(t *testing.T) {
	if _, _, err := gpsa.Run("/nonexistent/g.gpsa", algorithms.ConnectedComponents{}, gpsa.RunOptions{}); err == nil {
		t.Fatal("missing graph accepted")
	}
}

func TestResumeContinuesRun(t *testing.T) {
	path, g := saveSample(t)
	values := filepath.Join(t.TempDir(), "v.gpvf")
	prog := algorithms.ConnectedComponents{}

	vals, res, err := gpsa.Run(path, prog, gpsa.RunOptions{Supersteps: 1, ValuesPath: values})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Skip("graph converged in one superstep; nothing to resume")
	}
	if err := vals.Close(); err != nil {
		t.Fatal(err)
	}

	vals, res, err = gpsa.Resume(path, values, prog, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer vals.Close()
	if !res.Converged {
		t.Fatal("resumed run did not converge")
	}

	want, _ := algorithms.ReferenceRun(g, prog, 100)
	for v := int64(0); v < g.NumVertices; v++ {
		if vals.Uint(v) != want[v] {
			t.Fatalf("vertex %d: %d, want %d", v, vals.Uint(v), want[v])
		}
	}
}

func TestPageRankDefaultsToFiveSupersteps(t *testing.T) {
	path, _ := saveSample(t)
	_, res, err := gpsa.PageRank(path, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 5 {
		t.Fatalf("ran %d supersteps, want the paper's 5", res.Supersteps)
	}
}

func TestSSSPAndUnreachable(t *testing.T) {
	g, err := gpsa.BuildWeightedGraph([]gpsa.Edge{
		{Src: 0, Dst: 1, Weight: 2}, {Src: 1, Dst: 2, Weight: 3},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "w.gpsa")
	if err := gpsa.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	dists, _, err := gpsa.SSSP(path, 0, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dists[2] != 5 {
		t.Fatalf("dist[2] = %g, want 5", dists[2])
	}
	if !gpsa.Unreachable(dists[3]) || gpsa.Unreachable(dists[1]) {
		t.Fatalf("reachability flags wrong: %v", dists)
	}
	if !math.IsInf(dists[3], 1) {
		t.Fatalf("unreached distance = %g", dists[3])
	}
}

func TestProgressCallbackFires(t *testing.T) {
	path, _ := saveSample(t)
	var steps int
	_, res, err := gpsa.PageRank(path, gpsa.RunOptions{
		Supersteps: 3,
		Progress:   func(gpsa.StepStats) { steps++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != res.Supersteps {
		t.Fatalf("progress fired %d times for %d supersteps", steps, res.Supersteps)
	}
}

func TestRunGraphInMemory(t *testing.T) {
	g, err := gen.RMATGraph(gen.RMATConfig{Vertices: 300, Edges: 2000, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	sym := g.Symmetrize()
	vals, res, err := gpsa.RunGraph(sym, algorithms.ConnectedComponents{}, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer vals.Close()
	if !res.Converged {
		t.Fatal("in-memory run did not converge")
	}
	want := algorithms.TrueComponents(sym)
	for v := int64(0); v < sym.NumVertices; v++ {
		if vals.Uint(v) != uint64(want[v]) {
			t.Fatalf("vertex %d: %d, want %d", v, vals.Uint(v), want[v])
		}
	}
}

func TestRunGraphMatchesOnDiskRun(t *testing.T) {
	g, err := gen.RMATGraph(gen.RMATConfig{Vertices: 200, Edges: 1500, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.gpsa")
	if err := gpsa.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	diskVals, _, err := gpsa.Run(path, algorithms.BFS{Root: 0}, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer diskVals.Close()
	memVals, _, err := gpsa.RunGraph(g, algorithms.BFS{Root: 0}, gpsa.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer memVals.Close()
	for v := int64(0); v < g.NumVertices; v++ {
		if diskVals.Uint(v) != memVals.Uint(v) {
			t.Fatalf("vertex %d: disk %d, memory %d", v, diskVals.Uint(v), memVals.Uint(v))
		}
	}
}
